// Nonblocking collectives as progress-engine-driven schedules.
//
// Each MPI_Ibcast/Iallreduce/Ibarrier builds a per-rank state machine and
// returns immediately; the machine advances from RequestState completion
// hooks — i.e. from whatever context completes the underlying transfer (a
// ch_mad poller, an smp sender, a fiber resume) — never from a hidden
// blocking call. That makes the schedules engine-neutral: the threaded and
// sharded engines drive them identically.
//
// The pump: `pending_` counts outstanding tracked sub-operations plus one
// "issuing token" held while a round is being posted. Completions decrement;
// whoever drops it to zero advances the machine to the next round. Rounds
// are issued outside the schedule mutex, and every sub-operation primitive
// (coll_isend/coll_irecv) is non-blocking by construction — eager completes
// inline, rendezvous detaches — so hooks never stall their completer.
//
// Tags: each operation instance gets a private tag derived from a lockstep
// per-rank counter (Shared::next_icoll_seq). Two outstanding iallreduces
// sharing one tag could cross-match at a folded pair — the schedules have
// no cross-op ordering — so the instance tag, not the algorithm, namespaces
// the traffic. The window recycles after 64 concurrent instances, far past
// any sane outstanding-op count. Blocking collectives use tags 1..8; the
// instance space starts at 100, so the two never collide.
#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/comm_shared.hpp"

namespace madmpi::mpi {

namespace {

constexpr int kIcollTagBase = 100;
constexpr std::uint64_t kIcollTagWindow = 64;

int icoll_instance_tag(std::uint64_t seq) {
  return kIcollTagBase + static_cast<int>(seq % kIcollTagWindow);
}

/// Binomial parent/children of `rank` within an explicit member list
/// (members[0] is the tree root). Merges across calls: the first list in
/// which the rank is a non-root member supplies the parent; children
/// accumulate from every list (a leader receives once, then feeds every
/// tree it roots).
struct BcastEdges {
  rank_t parent = kInvalidRank;
  std::vector<rank_t> children;
};

/// Flat fan-out edges from members[0] — the interconnect level of the
/// hierarchical tree, mirroring the blocking linear_bcast_members (one
/// wire serialization on the deepest path instead of log2(reps)).
void linear_edges(const std::vector<rank_t>& members, rank_t rank,
                  BcastEdges& edges) {
  if (members.size() <= 1) return;
  if (rank == members.front()) {
    edges.children.insert(edges.children.end(), members.begin() + 1,
                          members.end());
  } else if (std::find(members.begin(), members.end(), rank) !=
                 members.end() &&
             edges.parent == kInvalidRank) {
    edges.parent = members.front();
  }
}

void binomial_edges(const std::vector<rank_t>& members, rank_t rank,
                    BcastEdges& edges) {
  const auto it = std::find(members.begin(), members.end(), rank);
  if (it == members.end()) return;
  const int n = static_cast<int>(members.size());
  const int me = static_cast<int>(it - members.begin());
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      if (edges.parent == kInvalidRank) {
        edges.parent = members[static_cast<std::size_t>(me & ~mask)];
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (me + mask < n) {
      edges.children.push_back(members[static_cast<std::size_t>(me + mask)]);
    }
    mask >>= 1;
  }
}

}  // namespace

/// One in-flight nonblocking collective on one rank. Owns the staging
/// buffers and the user-facing request; self-keeps-alive via the shared_ptr
/// captured in each completion hook.
class IcollSchedule : public std::enable_shared_from_this<IcollSchedule> {
 public:
  static Request start_bcast(Comm& comm, void* buf, int count,
                             const Datatype& type, rank_t root);
  static Request start_allreduce(Comm& comm, const void* send_buf,
                                 void* recv_buf, int count,
                                 const Datatype& type, const Op& op);
  static Request start_barrier(Comm& comm);

  IcollSchedule(const Comm& comm, int tag)
      : comm_(comm),
        tag_(tag),
        user_(std::make_shared<RequestState>(comm_.my_node())) {}

 private:
  enum class Stage {
    // bcast
    kBcastRecv,
    kBcastSend,
    // allreduce
    kFoldSend,      // folded-out odd rank: contribution sent, awaiting result
    kFoldRecv,      // even fold partner: absorbing the odd rank's data
    kExchange,      // recursive-doubling rounds over the pof2 core
    kUnfoldSend,    // even fold partner returns the result
    kUnfoldRecv,    // folded-out odd rank receives the result
    // barrier
    kDissemination,
    kDone,
  };

  // --- pump ---

  void track(Request request) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++pending_;
    }
    auto self = shared_from_this();
    request.state()->set_on_complete(
        [self](const MpiStatus& status) { self->on_done(status); });
  }

  /// Hold the issuing token while posting a round so an inline completion
  /// (eager send) cannot advance the machine mid-post.
  void begin_round() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  void end_round() { on_done(MpiStatus{}); }

  void on_done(const MpiStatus& status) {
    bool fire = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status.error != ErrorCode::kOk && error_ == ErrorCode::kOk) {
        error_ = status.error;
      }
      fire = (--pending_ == 0);
    }
    if (fire) advance();
  }

  void finish() {
    stage_ = Stage::kDone;
    MpiStatus status;
    status.error = error_;
    user_->complete(status);
  }

  void advance();

  // --- per-kind rounds (each posts under the issuing token) ---

  void bcast_post_recv();
  void bcast_post_sends();
  void bcast_finish();
  void allreduce_post_fold();
  void allreduce_post_round();
  void allreduce_post_unfold();
  void allreduce_absorb();
  void barrier_post_round();

  Comm comm_;
  const int tag_;
  std::shared_ptr<RequestState> user_;

  std::mutex mutex_;
  int pending_ = 0;
  ErrorCode error_ = ErrorCode::kOk;
  Stage stage_ = Stage::kDone;

  // bcast state
  void* user_buf_ = nullptr;
  int count_ = 0;
  Datatype type_ = Datatype::byte();
  bool staged_ = false;
  bool is_root_ = false;
  std::vector<std::byte> wire_;
  std::byte* payload_ = nullptr;
  std::size_t bytes_ = 0;
  BcastEdges edges_;

  // allreduce state
  Op op_ = Op::sum();
  std::byte* accum_ = nullptr;
  std::vector<std::byte> incoming_;
  int pof2_ = 1;
  int rem_ = 0;
  int core_rank_ = -1;
  int mask_ = 1;
  bool absorb_pending_ = false;

  // barrier state
  int barrier_mask_ = 1;
};

// --- state machine -------------------------------------------------------

void IcollSchedule::advance() {
  // Runs with pending_ == 0: nothing else is in flight, so the stage
  // transitions race-free. A recorded error short-circuits the remaining
  // rounds — no sub-operation is outstanding, so finishing now is safe.
  if (error_ != ErrorCode::kOk) {
    finish();
    return;
  }
  switch (stage_) {
    case Stage::kBcastRecv:
      bcast_post_sends();
      break;
    case Stage::kBcastSend:
      bcast_finish();
      break;
    case Stage::kFoldSend:
      // Contribution folded into the even partner; wait for the result.
      stage_ = Stage::kUnfoldRecv;
      begin_round();
      track(comm_.coll_irecv(accum_, bytes_, comm_.rank() - 1, tag_));
      end_round();
      break;
    case Stage::kFoldRecv:
      allreduce_absorb();
      allreduce_post_round();
      break;
    case Stage::kExchange:
      allreduce_absorb();
      mask_ <<= 1;
      allreduce_post_round();
      break;
    case Stage::kUnfoldSend:
    case Stage::kUnfoldRecv:
      finish();
      break;
    case Stage::kDissemination:
      barrier_mask_ <<= 1;
      barrier_post_round();
      break;
    case Stage::kDone:
      break;
  }
}

// --- ibcast --------------------------------------------------------------

void IcollSchedule::bcast_post_recv() {
  stage_ = Stage::kBcastRecv;
  begin_round();
  if (edges_.parent != kInvalidRank) {
    track(comm_.coll_irecv(payload_, bytes_, edges_.parent, tag_));
  }
  end_round();
}

void IcollSchedule::bcast_post_sends() {
  stage_ = Stage::kBcastSend;
  begin_round();
  for (rank_t child : edges_.children) {
    track(comm_.coll_isend(payload_, bytes_, child, tag_));
  }
  end_round();
}

void IcollSchedule::bcast_finish() {
  if (staged_ && !is_root_) {
    // Unpack on the completing context — the buffer hand-off to the user
    // happens at wait/test, which orders after this hook's completion.
    type_.unpack(payload_, count_, user_buf_);
  }
  finish();
}

Request IcollSchedule::start_bcast(Comm& comm, void* buf, int count,
                                   const Datatype& type, rank_t root) {
  const std::uint64_t seq = comm.shared_->next_icoll_seq(comm.rank());
  auto sched =
      std::make_shared<IcollSchedule>(comm, icoll_instance_tag(seq));
  sched->user_buf_ = buf;
  sched->count_ = count;
  sched->type_ = type;
  sched->is_root_ = comm.rank() == root;
  sched->bytes_ = type.size() * static_cast<std::size_t>(count);
  if (type.is_contiguous()) {
    sched->payload_ = static_cast<std::byte*>(buf);
  } else {
    sched->staged_ = true;
    sched->wire_.resize(sched->bytes_);
    sched->payload_ = sched->wire_.data();
    if (sched->is_root_) type.pack(buf, count, sched->payload_);
  }

  // The tree shape follows the same resolution as the blocking bcast; the
  // NIC offload is a blocking rendezvous, so its resolution falls back to
  // the hierarchical tree here.
  const BcastAlgorithm algorithm = comm.resolve_bcast(sched->bytes_);
  if (algorithm == BcastAlgorithm::kLinear) {
    if (sched->is_root_) {
      for (rank_t r = 0; r < comm.size(); ++r) {
        if (r != root) sched->edges_.children.push_back(r);
      }
    } else {
      sched->edges_.parent = root;
    }
  } else if (algorithm == BcastAlgorithm::kHierarchical ||
             algorithm == BcastAlgorithm::kOffload) {
    const CollTopo& topo = comm.coll_topo();
    const int root_island = topo.island_of[static_cast<std::size_t>(root)];
    const int root_cluster =
        topo.islands[static_cast<std::size_t>(root_island)].cluster;
    const int my_island =
        topo.island_of[static_cast<std::size_t>(comm.rank())];
    const int my_cluster =
        topo.islands[static_cast<std::size_t>(my_island)].cluster;
    if (!topo.single_cluster()) {
      linear_edges(rep_list(topo, root_cluster, root), comm.rank(),
                   sched->edges_);
    }
    binomial_edges(cluster_leader_list(topo, my_cluster, root_island, root),
                   comm.rank(), sched->edges_);
    binomial_edges(island_member_list(topo, my_island, root_island, root),
                   comm.rank(), sched->edges_);
  } else {
    // Flat binomial over comm ranks rotated so the root maps to position 0.
    std::vector<rank_t> members(static_cast<std::size_t>(comm.size()));
    for (int i = 0; i < comm.size(); ++i) {
      members[static_cast<std::size_t>(i)] = (root + i) % comm.size();
    }
    binomial_edges(members, comm.rank(), sched->edges_);
  }

  if (sched->is_root_) {
    sched->bcast_post_sends();
  } else {
    sched->bcast_post_recv();
  }
  return Request(sched->user_);
}

// --- iallreduce ----------------------------------------------------------

void IcollSchedule::allreduce_absorb() {
  if (absorb_pending_) {
    // Both halves of the exchange completed. The send lends the
    // accumulator to the wire without staging, but it only reports
    // completion after the bytes are injected (eager) or transferred
    // (rendezvous), so mutating the accumulator here is safe.
    op_.apply(incoming_.data(), accum_, count_, type_);
    absorb_pending_ = false;
  }
}

void IcollSchedule::allreduce_post_fold() {
  const rank_t rank = comm_.rank();
  if (rank % 2 == 1) {
    stage_ = Stage::kFoldSend;
    begin_round();
    track(comm_.coll_isend(accum_, bytes_, rank - 1, tag_));
    end_round();
  } else {
    stage_ = Stage::kFoldRecv;
    absorb_pending_ = true;
    begin_round();
    track(comm_.coll_irecv(incoming_.data(), bytes_, rank + 1, tag_));
    end_round();
  }
}

void IcollSchedule::allreduce_post_round() {
  if (mask_ >= pof2_) {
    allreduce_post_unfold();
    return;
  }
  stage_ = Stage::kExchange;
  const int partner_core = core_rank_ ^ mask_;
  const rank_t partner = partner_core < rem_
                             ? static_cast<rank_t>(partner_core * 2)
                             : static_cast<rank_t>(partner_core + rem_);
  absorb_pending_ = true;
  begin_round();
  track(comm_.coll_irecv(incoming_.data(), bytes_, partner, tag_));
  track(comm_.coll_isend(accum_, bytes_, partner, tag_));
  end_round();
}

void IcollSchedule::allreduce_post_unfold() {
  const rank_t rank = comm_.rank();
  if (rank < 2 * rem_ && rank % 2 == 0) {
    stage_ = Stage::kUnfoldSend;
    begin_round();
    track(comm_.coll_isend(accum_, bytes_, rank + 1, tag_));
    end_round();
  } else {
    finish();
  }
}

Request IcollSchedule::start_allreduce(Comm& comm, const void* send_buf,
                                       void* recv_buf, int count,
                                       const Datatype& type, const Op& op) {
  MADMPI_CHECK_MSG(type.is_contiguous(),
                   "iallreduce requires a contiguous datatype");
  const std::uint64_t seq = comm.shared_->next_icoll_seq(comm.rank());
  auto sched =
      std::make_shared<IcollSchedule>(comm, icoll_instance_tag(seq));
  sched->count_ = count;
  sched->type_ = type;
  sched->op_ = op;
  sched->bytes_ = type.size() * static_cast<std::size_t>(count);
  sched->accum_ = static_cast<std::byte*>(recv_buf);
  std::memcpy(sched->accum_, send_buf, sched->bytes_);
  sched->incoming_.resize(sched->bytes_);

  // Flat recursive doubling with the standard pre/post fold for
  // non-power-of-two sizes (the same schedule as the blocking algorithm,
  // unrolled into completion-driven rounds).
  const int n = comm.size();
  while (sched->pof2_ * 2 <= n) sched->pof2_ *= 2;
  sched->rem_ = n - sched->pof2_;
  const rank_t rank = comm.rank();
  if (rank < 2 * sched->rem_) {
    sched->core_rank_ = rank % 2 == 1 ? -1 : rank / 2;
    sched->allreduce_post_fold();
  } else {
    sched->core_rank_ = rank - sched->rem_;
    sched->allreduce_post_round();
  }
  return Request(sched->user_);
}

// --- ibarrier ------------------------------------------------------------

void IcollSchedule::barrier_post_round() {
  if (barrier_mask_ >= comm_.size()) {
    finish();
    return;
  }
  stage_ = Stage::kDissemination;
  const int n = comm_.size();
  const rank_t to = (comm_.rank() + barrier_mask_) % n;
  const rank_t from = (comm_.rank() - barrier_mask_ + n) % n;
  begin_round();
  track(comm_.coll_irecv(nullptr, 0, from, tag_));
  track(comm_.coll_isend(nullptr, 0, to, tag_));
  end_round();
}

Request IcollSchedule::start_barrier(Comm& comm) {
  const std::uint64_t seq = comm.shared_->next_icoll_seq(comm.rank());
  auto sched =
      std::make_shared<IcollSchedule>(comm, icoll_instance_tag(seq));
  sched->barrier_post_round();
  return Request(sched->user_);
}

// --- public entry points -------------------------------------------------

namespace {

/// An already-decided request (single rank, FT fallback, entry error).
Request completed_request(sim::Node& node, ErrorCode error) {
  auto state = std::make_shared<RequestState>(node);
  MpiStatus status;
  status.error = error;
  state->complete(status);
  return Request(std::move(state));
}

}  // namespace

Request Comm::ibcast(void* buf, int count, const Datatype& type,
                     rank_t root) {
  MADMPI_CHECK(root >= 0 && root < size());
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    raise_error(entry);
    return completed_request(my_node(), entry.code());
  }
  if (size() == 1) return completed_request(my_node(), ErrorCode::kOk);
  if (ft_should_wrap()) {
    // FT mode degrades to the blocking survivable collective at initiation
    // time, mirroring the blocking collectives' explicit FT fallback.
    return completed_request(my_node(), bcast(buf, count, type, root).code());
  }
  return IcollSchedule::start_bcast(*this, buf, count, type, root);
}

Request Comm::iallreduce(const void* send_buf, void* recv_buf, int count,
                         const Datatype& type, const Op& op) {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    raise_error(entry);
    return completed_request(my_node(), entry.code());
  }
  if (size() == 1) {
    std::memcpy(recv_buf, send_buf,
                type.size() * static_cast<std::size_t>(count));
    return completed_request(my_node(), ErrorCode::kOk);
  }
  if (ft_should_wrap()) {
    return completed_request(
        my_node(), allreduce(send_buf, recv_buf, count, type, op).code());
  }
  return IcollSchedule::start_allreduce(*this, send_buf, recv_buf, count,
                                        type, op);
}

Request Comm::ibarrier() {
  if (Status entry = ft_entry_check(); !entry.is_ok()) {
    raise_error(entry);
    return completed_request(my_node(), entry.code());
  }
  if (size() == 1) return completed_request(my_node(), ErrorCode::kOk);
  if (ft_should_wrap()) {
    return completed_request(my_node(), barrier().code());
  }
  return IcollSchedule::start_barrier(*this);
}

}  // namespace madmpi::mpi
