// Reduction operators (MPI_Op). Built-ins cover the usual arithmetic and
// logical reductions over primitive type classes; user-defined operators
// receive raw buffers like MPI_User_function.
#pragma once

#include <functional>

#include "mpi/datatype.hpp"

namespace madmpi::mpi {

class Op {
 public:
  /// Built-ins.
  static Op sum();
  static Op prod();
  static Op min();
  static Op max();
  static Op land();  // logical and
  static Op lor();   // logical or
  static Op band();  // bitwise and
  static Op bor();   // bitwise or
  static Op bxor();

  /// User-defined: fn(in, inout, count, datatype) combines `count` elements
  /// of `in` into `inout` (MPI_Op_create; commutativity is assumed by the
  /// collective algorithms, as with commute=1).
  using UserFunction =
      std::function<void(const void* in, void* inout, int count,
                         const Datatype& type)>;
  static Op user(UserFunction fn);

  /// Apply: inout[i] = inout[i] OP in[i] for count elements of `type`.
  /// Built-ins require a primitive (or contiguous-of-primitive) type class.
  void apply(const void* in, void* inout, int count,
             const Datatype& type) const;

  const char* name() const { return name_; }

 private:
  enum class Kind { kSum, kProd, kMin, kMax, kLand, kLor, kBand, kBor, kBxor,
                    kUser };
  Op(Kind kind, const char* name) : kind_(kind), name_(name) {}

  Kind kind_;
  const char* name_;
  UserFunction user_fn_;
};

}  // namespace madmpi::mpi
