#include "mpi/datatype.hpp"

#include <algorithm>
#include <cstring>

#include "common/status.hpp"

namespace madmpi::mpi {

struct Datatype::Impl {
  std::string name;
  TypeClass type_class = TypeClass::kDerived;
  std::size_t size = 0;
  std::size_t extent = 0;
  std::vector<Segment> segments;  // coalesced, in packing order

  bool contiguous() const {
    return segments.size() == 1 && segments[0].offset == 0 &&
           segments[0].length == size && extent == size;
  }
};

namespace {

/// Merge adjacent runs so pack loops touch memory in as few memcpys as
/// possible (important: derived types are used in the stencil examples).
/// Runs only merge when their primitive widths match, so byte-swapping
/// for heterogeneity stays well-defined.
std::vector<Datatype::Segment> coalesce(
    std::vector<Datatype::Segment> segments) {
  std::vector<Datatype::Segment> out;
  for (const auto& segment : segments) {
    if (segment.length == 0) continue;
    if (!out.empty() &&
        out.back().offset + out.back().length == segment.offset &&
        out.back().width == segment.width) {
      out.back().length += segment.length;
    } else {
      out.push_back(segment);
    }
  }
  return out;
}

std::shared_ptr<const Datatype::Impl> make_primitive(std::string name,
                                                     TypeClass type_class,
                                                     std::size_t size) {
  auto impl = std::make_shared<Datatype::Impl>();
  impl->name = std::move(name);
  impl->type_class = type_class;
  impl->size = size;
  impl->extent = size;
  impl->segments = {{0, size, size}};
  return impl;
}

}  // namespace

#define MADMPI_PRIMITIVE(fn, name, type_class, size)               \
  Datatype Datatype::fn() {                                        \
    static const auto impl = make_primitive(name, type_class, size); \
    return Datatype(impl);                                         \
  }

MADMPI_PRIMITIVE(int8, "int8", TypeClass::kInt8, 1)
MADMPI_PRIMITIVE(uint8, "uint8", TypeClass::kUInt8, 1)
MADMPI_PRIMITIVE(int32, "int32", TypeClass::kInt32, 4)
MADMPI_PRIMITIVE(uint32, "uint32", TypeClass::kUInt32, 4)
MADMPI_PRIMITIVE(int64, "int64", TypeClass::kInt64, 8)
MADMPI_PRIMITIVE(uint64, "uint64", TypeClass::kUInt64, 8)
MADMPI_PRIMITIVE(float32, "float32", TypeClass::kFloat, 4)
MADMPI_PRIMITIVE(float64, "float64", TypeClass::kDouble, 8)
MADMPI_PRIMITIVE(byte, "byte", TypeClass::kByte, 1)

#undef MADMPI_PRIMITIVE

Datatype Datatype::contiguous(int count, const Datatype& base) {
  MADMPI_CHECK(count >= 0);
  auto impl = std::make_shared<Impl>();
  impl->name = "contiguous(" + std::to_string(count) + "," +
               base.impl_->name + ")";
  impl->type_class = base.impl_->type_class;
  impl->size = base.impl_->size * static_cast<std::size_t>(count);
  impl->extent = base.impl_->extent * static_cast<std::size_t>(count);
  std::vector<Segment> segments;
  for (int i = 0; i < count; ++i) {
    const std::size_t shift = base.impl_->extent * static_cast<std::size_t>(i);
    for (const auto& segment : base.impl_->segments) {
      segments.push_back(
          {segment.offset + shift, segment.length, segment.width});
    }
  }
  impl->segments = coalesce(std::move(segments));
  return Datatype(std::move(impl));
}

Datatype Datatype::vector(int count, int block_length, int stride,
                          const Datatype& base) {
  MADMPI_CHECK(count >= 0 && block_length >= 0);
  auto impl = std::make_shared<Impl>();
  impl->name = "vector(" + std::to_string(count) + "," +
               std::to_string(block_length) + "," + std::to_string(stride) +
               "," + base.impl_->name + ")";
  impl->type_class = base.impl_->type_class;
  impl->size = base.impl_->size * static_cast<std::size_t>(count) *
               static_cast<std::size_t>(block_length);
  std::vector<Segment> segments;
  std::ptrdiff_t max_end = 0;
  for (int i = 0; i < count; ++i) {
    const std::ptrdiff_t block_start =
        static_cast<std::ptrdiff_t>(base.impl_->extent) * stride * i;
    for (int j = 0; j < block_length; ++j) {
      const std::ptrdiff_t shift =
          block_start +
          static_cast<std::ptrdiff_t>(base.impl_->extent) * j;
      MADMPI_CHECK_MSG(shift >= 0, "negative strides are not supported");
      for (const auto& segment : base.impl_->segments) {
        segments.push_back({segment.offset + static_cast<std::size_t>(shift),
                            segment.length, segment.width});
      }
      max_end = std::max(
          max_end, shift + static_cast<std::ptrdiff_t>(base.impl_->extent));
    }
  }
  impl->extent = static_cast<std::size_t>(max_end);
  impl->segments = coalesce(std::move(segments));
  return Datatype(std::move(impl));
}

Datatype Datatype::indexed(std::span<const int> block_lengths,
                           std::span<const int> displacements,
                           const Datatype& base) {
  MADMPI_CHECK(block_lengths.size() == displacements.size());
  auto impl = std::make_shared<Impl>();
  impl->name = "indexed(" + std::to_string(block_lengths.size()) + "," +
               base.impl_->name + ")";
  impl->type_class = base.impl_->type_class;
  std::vector<Segment> segments;
  std::size_t total = 0;
  std::size_t max_end = 0;
  for (std::size_t b = 0; b < block_lengths.size(); ++b) {
    MADMPI_CHECK(block_lengths[b] >= 0 && displacements[b] >= 0);
    for (int j = 0; j < block_lengths[b]; ++j) {
      const std::size_t shift =
          base.impl_->extent *
          (static_cast<std::size_t>(displacements[b]) +
           static_cast<std::size_t>(j));
      for (const auto& segment : base.impl_->segments) {
        segments.push_back(
            {segment.offset + shift, segment.length, segment.width});
      }
      max_end = std::max(max_end, shift + base.impl_->extent);
    }
    total += base.impl_->size * static_cast<std::size_t>(block_lengths[b]);
  }
  impl->size = total;
  impl->extent = max_end;
  impl->segments = coalesce(std::move(segments));
  return Datatype(std::move(impl));
}

Datatype Datatype::create_struct(
    std::span<const int> block_lengths,
    std::span<const std::ptrdiff_t> byte_displacements,
    std::span<const Datatype> types) {
  MADMPI_CHECK(block_lengths.size() == byte_displacements.size());
  MADMPI_CHECK(block_lengths.size() == types.size());
  auto impl = std::make_shared<Impl>();
  impl->name = "struct(" + std::to_string(types.size()) + ")";
  impl->type_class = TypeClass::kDerived;
  std::vector<Segment> segments;
  std::size_t total = 0;
  std::size_t max_end = 0;
  for (std::size_t b = 0; b < types.size(); ++b) {
    MADMPI_CHECK(block_lengths[b] >= 0 && byte_displacements[b] >= 0);
    const auto& base = *types[b].impl_;
    for (int j = 0; j < block_lengths[b]; ++j) {
      const std::size_t shift =
          static_cast<std::size_t>(byte_displacements[b]) +
          base.extent * static_cast<std::size_t>(j);
      for (const auto& segment : base.segments) {
        segments.push_back(
            {segment.offset + shift, segment.length, segment.width});
      }
      max_end = std::max(max_end, shift + base.extent);
    }
    total += base.size * static_cast<std::size_t>(block_lengths[b]);
  }
  impl->size = total;
  impl->extent = max_end;
  // Struct packing order follows declaration order, not address order, so
  // do NOT sort; only coalesce truly adjacent runs.
  impl->segments = coalesce(std::move(segments));
  return Datatype(std::move(impl));
}

Datatype Datatype::resized(const Datatype& base, std::size_t new_extent) {
  auto impl = std::make_shared<Impl>(*base.impl_);
  impl->name = "resized(" + base.impl_->name + ")";
  impl->extent = new_extent;
  return Datatype(std::move(impl));
}

std::size_t Datatype::size() const { return impl_->size; }
std::size_t Datatype::extent() const { return impl_->extent; }
bool Datatype::is_contiguous() const { return impl_->contiguous(); }
TypeClass Datatype::type_class() const { return impl_->type_class; }
const std::string& Datatype::name() const { return impl_->name; }
const std::vector<Datatype::Segment>& Datatype::segments() const {
  return impl_->segments;
}

void Datatype::swap_packed(std::byte* wire, int count) const {
  std::byte* at = wire;
  for (int i = 0; i < count; ++i) {
    for (const auto& segment : impl_->segments) {
      if (segment.width <= 1) {
        at += segment.length;
        continue;
      }
      MADMPI_CHECK(segment.length % segment.width == 0);
      for (std::size_t chunk = 0; chunk < segment.length;
           chunk += segment.width) {
        std::reverse(at + chunk, at + chunk + segment.width);
      }
      at += segment.length;
    }
  }
}

void Datatype::swap_packed_bytes(std::byte* wire, std::size_t bytes) const {
  const std::size_t elem = impl_->size;
  if (elem == 0 || bytes == 0) return;
  const std::size_t whole = bytes / elem;
  swap_packed(wire, static_cast<int>(whole));

  // The ragged tail: a partial final element. Walk its segments, swapping
  // the complete primitives it contains; a primitive cut mid-width is
  // reversed over the bytes present (the best a byte-order pass can do —
  // the value is unrecoverable either way, but no byte stays wire-order).
  std::size_t rest = bytes % elem;
  std::byte* at = wire + whole * elem;
  for (const auto& segment : impl_->segments) {
    if (rest == 0) break;
    const std::size_t len = std::min(segment.length, rest);
    if (segment.width > 1) {
      std::size_t chunk = 0;
      for (; chunk + segment.width <= len; chunk += segment.width) {
        std::reverse(at + chunk, at + chunk + segment.width);
      }
      if (chunk < len) std::reverse(at + chunk, at + len);
    }
    at += len;
    rest -= len;
  }
}

void Datatype::pack(const void* src, int count, std::byte* dst) const {
  const auto* base = static_cast<const std::byte*>(src);
  if (is_contiguous()) {
    std::memcpy(dst, base, impl_->size * static_cast<std::size_t>(count));
    return;
  }
  std::byte* out = dst;
  for (int i = 0; i < count; ++i) {
    const std::byte* element = base + impl_->extent * static_cast<std::size_t>(i);
    for (const auto& segment : impl_->segments) {
      std::memcpy(out, element + segment.offset, segment.length);
      out += segment.length;
    }
  }
}

void Datatype::unpack(const std::byte* src, int count, void* dst) const {
  auto* base = static_cast<std::byte*>(dst);
  if (is_contiguous()) {
    std::memcpy(base, src, impl_->size * static_cast<std::size_t>(count));
    return;
  }
  const std::byte* in = src;
  for (int i = 0; i < count; ++i) {
    std::byte* element = base + impl_->extent * static_cast<std::size_t>(i);
    for (const auto& segment : impl_->segments) {
      std::memcpy(element + segment.offset, in, segment.length);
      in += segment.length;
    }
  }
}

}  // namespace madmpi::mpi
