#include "mpi/compat.hpp"

#include <memory>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "core/session.hpp"
#include "marcel/engine.hpp"
#include "mpi/cart.hpp"
#include "mpi/packbuf.hpp"
#include "mpi/persistent.hpp"
#include "mpi/request.hpp"
#include "mpi/win.hpp"

namespace madmpi::compat {
namespace detail {

/// Per-rank-thread handle tables. Index 0 of `comms` is MPI_COMM_WORLD.
struct ThreadState {
  bool bound = false;
  bool initialized = false;
  std::vector<mpi::Comm> comms;
  std::vector<mpi::Request> requests;
  std::vector<mpi::Datatype> derived_types;

  /// Matched-probe handles: each slot pairs the owned message with the
  /// comm it was probed on, so MPI_Mrecv completes it on the right comm.
  struct MessageSlot {
    mpi::MatchedMessage message;
    MPI_Comm comm = -1;
  };
  std::vector<MessageSlot> messages;
  std::vector<mpi::PersistentRequest> persistents;
  std::map<int, mpi::CartComm> carts;  // keyed by the comm handle
  int bsend_attached_size = 0;

  /// One-sided windows; `disp_unit` scales MPI_Put/Get/Accumulate target
  /// displacements into byte offsets.
  struct WinSlot {
    mpi::Win win;
    int disp_unit = 1;
  };
  std::vector<WinSlot> wins;

  /// Error handling: per-comm handler (default MPI_ERRORS_ARE_FATAL, as
  /// the standard requires) plus the registry for user-created handlers.
  std::map<MPI_Comm, MPI_Errhandler> comm_errhandlers;
  std::vector<MPI_Comm_errhandler_function*> errhandler_fns;
};

/// Handle-space layout: derived datatype handles start at kDerivedBase;
/// persistent request handles at kPersistentBase; user errhandlers after
/// the two predefined ones.
inline constexpr int kDerivedBase = 1000;
inline constexpr int kPersistentBase = 1 << 20;
inline constexpr MPI_Errhandler kCustomErrhandlerBase = 2;

thread_local ThreadState tls;

void destroy_fiber_state(void* p) { delete static_cast<ThreadState*>(p); }

/// The facade's per-rank state: a thread_local under the threaded engine,
/// the fiber's local slot under the sharded one — fibers from several
/// ranks share each shard worker's OS thread, so a plain thread_local
/// would alias their handle tables (and trip the bind_world guard as soon
/// as one rank parks while bound).
ThreadState& storage() {
  if (void** slot = marcel::fiber_local_slot(marcel::kFiberSlotCompat,
                                             &destroy_fiber_state)) {
    if (*slot == nullptr) *slot = new ThreadState{};
    return *static_cast<ThreadState*>(*slot);
  }
  return tls;
}

ThreadState& state() {
  ThreadState& s = storage();
  MADMPI_CHECK_MSG(s.bound,
                   "MPI_* called outside madmpi::compat::run / bind_world");
  return s;
}

mpi::Comm& comm_of(MPI_Comm handle) {
  ThreadState& s = state();
  MADMPI_CHECK_MSG(handle >= 0 &&
                       static_cast<std::size_t>(handle) < s.comms.size() &&
                       s.comms[static_cast<std::size_t>(handle)].valid(),
                   "invalid or freed MPI_Comm handle");
  return s.comms[static_cast<std::size_t>(handle)];
}

MPI_Comm store_comm(mpi::Comm comm) {
  if (!comm.valid()) return MPI_COMM_NULL;  // MPI_UNDEFINED color
  ThreadState& s = state();
  s.comms.push_back(std::move(comm));
  return static_cast<MPI_Comm>(s.comms.size() - 1);
}

mpi::Datatype type_of(MPI_Datatype handle) {
  if (handle >= kDerivedBase) {
    ThreadState& s = state();
    const auto index = static_cast<std::size_t>(handle - kDerivedBase);
    MADMPI_CHECK_MSG(index < s.derived_types.size(),
                     "invalid derived MPI_Datatype handle");
    return s.derived_types[index];
  }
  switch (handle) {
    case MPI_BYTE: return mpi::Datatype::byte();
    case MPI_CHAR: return mpi::Datatype::int8();
    case MPI_INT: return mpi::Datatype::int32();
    case MPI_UNSIGNED: return mpi::Datatype::uint32();
    case MPI_LONG_LONG: return mpi::Datatype::int64();
    case MPI_UNSIGNED_LONG_LONG: return mpi::Datatype::uint64();
    case MPI_FLOAT: return mpi::Datatype::float32();
    case MPI_DOUBLE: return mpi::Datatype::float64();
  }
  fatal("unknown MPI_Datatype handle");
}

mpi::Op op_of(MPI_Op handle) {
  switch (handle) {
    case MPI_SUM: return mpi::Op::sum();
    case MPI_PROD: return mpi::Op::prod();
    case MPI_MIN: return mpi::Op::min();
    case MPI_MAX: return mpi::Op::max();
    case MPI_LAND: return mpi::Op::land();
    case MPI_LOR: return mpi::Op::lor();
    case MPI_BAND: return mpi::Op::band();
    case MPI_BOR: return mpi::Op::bor();
    case MPI_BXOR: return mpi::Op::bxor();
  }
  fatal("unknown MPI_Op handle");
}

ThreadState::WinSlot& win_slot(MPI_Win handle) {
  ThreadState& s = state();
  MADMPI_CHECK_MSG(handle >= 0 &&
                       static_cast<std::size_t>(handle) < s.wins.size() &&
                       s.wins[static_cast<std::size_t>(handle)].win.valid(),
                   "invalid or freed MPI_Win handle");
  return s.wins[static_cast<std::size_t>(handle)];
}

/// Maps a predefined datatype handle onto the one-sided wire element type.
/// False for derived handles — those pack at the origin and travel kByte.
bool primitive_rma_type(MPI_Datatype handle, mpi::RmaType* out) {
  switch (handle) {
    case MPI_BYTE: *out = mpi::RmaType::kByte; return true;
    case MPI_CHAR: *out = mpi::RmaType::kInt8; return true;
    case MPI_INT: *out = mpi::RmaType::kInt32; return true;
    case MPI_UNSIGNED: *out = mpi::RmaType::kUint32; return true;
    case MPI_LONG_LONG: *out = mpi::RmaType::kInt64; return true;
    case MPI_UNSIGNED_LONG_LONG: *out = mpi::RmaType::kUint64; return true;
    case MPI_FLOAT: *out = mpi::RmaType::kFloat32; return true;
    case MPI_DOUBLE: *out = mpi::RmaType::kFloat64; return true;
    default: return false;
  }
}

mpi::RmaOp rma_op_of(MPI_Op op) {
  switch (op) {
    case MPI_SUM: return mpi::RmaOp::kSum;
    case MPI_PROD: return mpi::RmaOp::kProd;
    case MPI_MIN: return mpi::RmaOp::kMin;
    case MPI_MAX: return mpi::RmaOp::kMax;
    case MPI_LAND: return mpi::RmaOp::kLand;
    case MPI_LOR: return mpi::RmaOp::kLor;
    case MPI_BAND: return mpi::RmaOp::kBand;
    case MPI_BOR: return mpi::RmaOp::kBor;
    case MPI_BXOR: return mpi::RmaOp::kBxor;
    case MPI_REPLACE: return mpi::RmaOp::kReplace;
  }
  fatal("unknown MPI_Op handle for MPI_Accumulate");
}

int map_error(madmpi::ErrorCode code) {
  switch (code) {
    case madmpi::ErrorCode::kOk: return MPI_SUCCESS;
    case madmpi::ErrorCode::kTruncated: return MPI_ERR_TRUNCATE;
    case madmpi::ErrorCode::kInvalidArgument: return MPI_ERR_ARG;
    // A successfully cancelled operation completes with MPI_SUCCESS; the
    // cancellation is reported via MPI_Test_cancelled, not the error field.
    case madmpi::ErrorCode::kCancelled: return MPI_SUCCESS;
    case madmpi::ErrorCode::kProcFailed: return MPIX_ERR_PROC_FAILED;
    case madmpi::ErrorCode::kRevoked: return MPIX_ERR_REVOKED;
    default: return MPI_ERR_OTHER;
  }
}

MPI_Errhandler handler_of(MPI_Comm handle) {
  ThreadState& s = state();
  auto it = s.comm_errhandlers.find(handle);
  return it == s.comm_errhandlers.end() ? MPI_ERRORS_ARE_FATAL : it->second;
}

/// Record the handler for the facade AND translate it onto the underlying
/// C++ communicator, so errors raised deep inside an operation (e.g. a
/// watchdog cancellation mid-recv) follow the same policy as the return
/// value the caller sees.
void install_errhandler(MPI_Comm handle, MPI_Errhandler errhandler) {
  ThreadState& s = state();
  s.comm_errhandlers[handle] = errhandler;
  mpi::Comm& comm = comm_of(handle);
  if (errhandler == MPI_ERRORS_RETURN) {
    comm.set_errhandler(mpi::Errhandler::errors_return());
  } else if (errhandler == MPI_ERRORS_ARE_FATAL) {
    comm.set_errhandler(mpi::Errhandler::errors_are_fatal());
  } else {
    const auto index =
        static_cast<std::size_t>(errhandler - kCustomErrhandlerBase);
    MADMPI_CHECK_MSG(index < s.errhandler_fns.size(),
                     "invalid MPI_Errhandler handle");
    MPI_Comm_errhandler_function* fn = s.errhandler_fns[index];
    comm.set_errhandler(mpi::Errhandler::custom(
        [handle, fn](madmpi::ErrorCode code, const std::string&) {
          MPI_Comm comm_handle = handle;
          int error = map_error(code);
          fn(&comm_handle, &error);
        }));
  }
}

void fill_status(MPI_Status* out, const mpi::MpiStatus& status) {
  if (out == nullptr) return;
  out->MPI_SOURCE = status.source;
  out->MPI_TAG = status.tag;
  out->MPI_ERROR = map_error(status.error);
  out->internal_bytes = static_cast<int>(status.bytes);
  out->internal_cancelled =
      status.error == madmpi::ErrorCode::kCancelled ? 1 : 0;
}

MPI_Request store_request(mpi::Request request) {
  ThreadState& s = state();
  s.requests.push_back(std::move(request));
  return static_cast<MPI_Request>(s.requests.size() - 1);
}

mpi::Request& request_of(MPI_Request handle) {
  ThreadState& s = state();
  MADMPI_CHECK_MSG(
      handle >= 0 && static_cast<std::size_t>(handle) < s.requests.size() &&
          s.requests[static_cast<std::size_t>(handle)].valid(),
      "invalid or completed MPI_Request handle");
  return s.requests[static_cast<std::size_t>(handle)];
}

MPI_Message store_message(mpi::MatchedMessage message, MPI_Comm comm) {
  ThreadState& s = state();
  s.messages.push_back({std::move(message), comm});
  return static_cast<MPI_Message>(s.messages.size() - 1);
}

ThreadState::MessageSlot take_message(MPI_Message* handle) {
  ThreadState& s = state();
  MADMPI_CHECK_MSG(
      *handle >= 0 &&
          static_cast<std::size_t>(*handle) < s.messages.size() &&
          s.messages[static_cast<std::size_t>(*handle)].message.valid(),
      "invalid or already received MPI_Message handle");
  ThreadState::MessageSlot slot =
      std::move(s.messages[static_cast<std::size_t>(*handle)]);
  *handle = MPI_MESSAGE_NULL;
  return slot;
}

MPI_Datatype store_type(mpi::Datatype type) {
  ThreadState& s = state();
  s.derived_types.push_back(std::move(type));
  return kDerivedBase + static_cast<MPI_Datatype>(s.derived_types.size() - 1);
}

mpi::PersistentRequest& persistent_of(MPI_Request handle) {
  ThreadState& s = state();
  const auto index = static_cast<std::size_t>(handle - kPersistentBase);
  MADMPI_CHECK_MSG(handle >= kPersistentBase &&
                       index < s.persistents.size() &&
                       s.persistents[index].valid(),
                   "invalid persistent MPI_Request handle");
  return s.persistents[index];
}

MPI_Request store_persistent(mpi::PersistentRequest request) {
  ThreadState& s = state();
  s.persistents.push_back(std::move(request));
  return kPersistentBase + static_cast<MPI_Request>(s.persistents.size() - 1);
}

}  // namespace detail

void bind_world(mpi::Comm world) {
  detail::ThreadState& s = detail::storage();
  MADMPI_CHECK_MSG(!s.bound, "world already bound on this thread");
  s.bound = true;
  s.initialized = false;
  s.comms.clear();
  s.requests.clear();
  s.comms.push_back(std::move(world));
}

void unbind_world() { detail::storage() = detail::ThreadState{}; }

void run(const sim::ClusterSpec& cluster,
         const std::function<void()>& rank_main) {
  core::Session::Options options;
  options.cluster = cluster;
  core::Session session(std::move(options));
  session.run([&rank_main](mpi::Comm world) {
    bind_world(std::move(world));
    rank_main();
    unbind_world();
  });
}

}  // namespace madmpi::compat

// ------------------------------------------------------------------ C API

namespace detail = madmpi::compat::detail;

int MPI_Init(int*, char***) {
  detail::state().initialized = true;
  // The standard's default: errors on any communicator abort the program
  // until the application installs something gentler.
  detail::install_errhandler(MPI_COMM_WORLD, MPI_ERRORS_ARE_FATAL);
  return MPI_SUCCESS;
}

int MPI_Finalize() {
  detail::state().initialized = false;
  return MPI_SUCCESS;
}

int MPI_Initialized(int* flag) {
  detail::ThreadState& s = detail::storage();
  *flag = s.bound && s.initialized ? 1 : 0;
  return MPI_SUCCESS;
}

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  *rank = detail::comm_of(comm).rank();
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  *size = detail::comm_of(comm).size();
  return MPI_SUCCESS;
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* out) {
  *out = detail::store_comm(detail::comm_of(comm).dup());
  if (*out != MPI_COMM_NULL) {
    detail::install_errhandler(*out, detail::handler_of(comm));
  }
  return MPI_SUCCESS;
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* out) {
  if (color < 0 && color != MPI_UNDEFINED) {
    // A negative color is not the MPI_UNDEFINED sentinel: raise MPI_ERR_ARG
    // through the installed errhandler (fatal by default) instead of
    // silently treating it as "no membership". Checked before the
    // collective exchange — the call never reaches the other ranks.
    *out = MPI_COMM_NULL;
    const madmpi::Status raised = detail::comm_of(comm).raise_error(
        madmpi::Status(madmpi::ErrorCode::kInvalidArgument,
                       "MPI_Comm_split: negative color " +
                           std::to_string(color) + " is not MPI_UNDEFINED"));
    return detail::map_error(raised.code());
  }
  const int effective = color == MPI_UNDEFINED ? -1 : color;
  *out = detail::store_comm(detail::comm_of(comm).split(effective, key));
  if (*out != MPI_COMM_NULL) {
    detail::install_errhandler(*out, detail::handler_of(comm));
  }
  return MPI_SUCCESS;
}

int MPIX_Comm_revoke(MPI_Comm comm) {
  return detail::map_error(detail::comm_of(comm).revoke().code());
}

int MPIX_Comm_shrink(MPI_Comm comm, MPI_Comm* new_comm) {
  madmpi::mpi::Comm shrunk = detail::comm_of(comm).shrink();
  if (!shrunk.valid()) {
    // This rank was agreed failed (asymmetric partition): shrink already
    // raised kProcFailed through the errhandler.
    *new_comm = MPI_COMM_NULL;
    return MPIX_ERR_PROC_FAILED;
  }
  *new_comm = detail::store_comm(std::move(shrunk));
  detail::install_errhandler(*new_comm, detail::handler_of(comm));
  return MPI_SUCCESS;
}

int MPIX_Comm_agree(MPI_Comm comm, int* flag) {
  return detail::map_error(detail::comm_of(comm).agree(flag).code());
}

int MPI_Comm_free(MPI_Comm* comm) {
  // Handles are cheap; just invalidate the slot.
  auto& s = detail::state();
  MADMPI_CHECK_MSG(*comm != MPI_COMM_WORLD, "cannot free MPI_COMM_WORLD");
  if (*comm >= 0 && static_cast<std::size_t>(*comm) < s.comms.size()) {
    s.comms[static_cast<std::size_t>(*comm)] = madmpi::mpi::Comm();
  }
  *comm = MPI_COMM_NULL;
  return MPI_SUCCESS;
}

int MPI_Send(const void* buf, int count, MPI_Datatype type, int dest,
             int tag, MPI_Comm comm) {
  const madmpi::Status status = detail::comm_of(comm).send(
      buf, count, detail::type_of(type), dest, tag);
  return detail::map_error(status.code());
}

int MPI_Ssend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm) {
  const madmpi::Status status = detail::comm_of(comm).ssend(
      buf, count, detail::type_of(type), dest, tag);
  return detail::map_error(status.code());
}

int MPI_Recv(void* buf, int count, MPI_Datatype type, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  const auto result = detail::comm_of(comm).recv(
      buf, count, detail::type_of(type), source, tag);
  detail::fill_status(status, result);
  return detail::map_error(result.error);
}

int MPI_Isend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_request(detail::comm_of(comm).isend(
      buf, count, detail::type_of(type), dest, tag));
  return MPI_SUCCESS;
}

int MPI_Irecv(void* buf, int count, MPI_Datatype type, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_request(detail::comm_of(comm).irecv(
      buf, count, detail::type_of(type), source, tag));
  return MPI_SUCCESS;
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  if (*request >= detail::kPersistentBase) {
    // Persistent requests become inactive but their handle stays valid;
    // waiting on an inactive one returns immediately (MPI semantics).
    auto& persistent = detail::persistent_of(*request);
    if (!persistent.active()) return MPI_SUCCESS;
    const auto result = persistent.wait();
    detail::fill_status(status, result);
    return MPI_SUCCESS;
  }
  const auto result = detail::request_of(*request).wait();
  detail::fill_status(status, result);
  *request = MPI_REQUEST_NULL;
  // A watchdog cancellation or revocation must surface through the return
  // value too (MPI_ERRORS_RETURN propagation); a user MPI_Cancel maps to
  // MPI_SUCCESS in map_error, keeping the §3.8.4 contract.
  return detail::map_error(result.error);
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  madmpi::mpi::MpiStatus result;
  if (*request >= detail::kPersistentBase) {
    auto& persistent = detail::persistent_of(*request);
    if (!persistent.active()) {  // inactive: trivially complete
      *flag = 1;
      return MPI_SUCCESS;
    }
    if (persistent.test(&result)) {
      *flag = 1;
      detail::fill_status(status, result);
    } else {
      *flag = 0;
    }
    return MPI_SUCCESS;
  }
  if (detail::request_of(*request).test(&result)) {
    *flag = 1;
    detail::fill_status(status, result);
    *request = MPI_REQUEST_NULL;
  } else {
    *flag = 0;
  }
  return MPI_SUCCESS;
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
  for (int i = 0; i < count; ++i) {
    MPI_Wait(&requests[i],
             statuses == MPI_STATUSES_IGNORE ? nullptr : &statuses[i]);
  }
  return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* send_buf, int send_count, MPI_Datatype send_type,
                 int dest, int send_tag, void* recv_buf, int recv_count,
                 MPI_Datatype recv_type, int source, int recv_tag,
                 MPI_Comm comm, MPI_Status* status) {
  const auto result = detail::comm_of(comm).sendrecv(
      send_buf, send_count, detail::type_of(send_type), dest, send_tag,
      recv_buf, recv_count, detail::type_of(recv_type), source, recv_tag);
  detail::fill_status(status, result);
  return detail::map_error(result.error);
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  const auto result = detail::comm_of(comm).probe(source, tag);
  detail::fill_status(status, result);
  return detail::map_error(result.error);
}

int MPI_Iprobe(int source, int tag, MPI_Comm comm, int* flag,
               MPI_Status* status) {
  madmpi::mpi::MpiStatus result;
  *flag = detail::comm_of(comm).iprobe(source, tag, &result) ? 1 : 0;
  if (*flag) detail::fill_status(status, result);
  return MPI_SUCCESS;
}

int MPI_Mprobe(int source, int tag, MPI_Comm comm, MPI_Message* message,
               MPI_Status* status) {
  madmpi::mpi::MatchedMessage matched;
  const auto result = detail::comm_of(comm).mprobe(source, tag, &matched);
  detail::fill_status(status, result);
  if (result.error != madmpi::ErrorCode::kOk) {
    *message = MPI_MESSAGE_NULL;
    return detail::map_error(result.error);
  }
  *message = detail::store_message(std::move(matched), comm);
  return MPI_SUCCESS;
}

int MPI_Improbe(int source, int tag, MPI_Comm comm, int* flag,
                MPI_Message* message, MPI_Status* status) {
  madmpi::mpi::MatchedMessage matched;
  madmpi::mpi::MpiStatus result;
  *flag =
      detail::comm_of(comm).improbe(source, tag, &matched, &result) ? 1 : 0;
  if (*flag) {
    detail::fill_status(status, result);
    *message = detail::store_message(std::move(matched), comm);
  } else {
    *message = MPI_MESSAGE_NULL;
  }
  return MPI_SUCCESS;
}

int MPI_Mrecv(void* buf, int count, MPI_Datatype type, MPI_Message* message,
              MPI_Status* status) {
  auto slot = detail::take_message(message);
  const auto result = detail::comm_of(slot.comm).mrecv(
      buf, count, detail::type_of(type), std::move(slot.message));
  detail::fill_status(status, result);
  return detail::map_error(result.error);
}

int MPI_Imrecv(void* buf, int count, MPI_Datatype type, MPI_Message* message,
               MPI_Request* request) {
  auto slot = detail::take_message(message);
  *request = detail::store_request(detail::comm_of(slot.comm).imrecv(
      buf, count, detail::type_of(type), std::move(slot.message)));
  return MPI_SUCCESS;
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype type, int* count) {
  // Shared element_count rules: an empty message counts 0 elements even
  // for a zero-size datatype; only a non-dividing byte count is undefined.
  const std::int64_t elements = madmpi::mpi::element_count(
      static_cast<std::uint64_t>(status->internal_bytes),
      detail::type_of(type).size());
  *count = elements < 0 ? MPI_UNDEFINED : static_cast<int>(elements);
  return MPI_SUCCESS;
}

// ---------------------------------------------------------- error handlers

int MPI_Comm_create_errhandler(MPI_Comm_errhandler_function* fn,
                               MPI_Errhandler* errhandler) {
  auto& s = detail::state();
  s.errhandler_fns.push_back(fn);
  *errhandler = detail::kCustomErrhandlerBase +
                static_cast<MPI_Errhandler>(s.errhandler_fns.size() - 1);
  return MPI_SUCCESS;
}

int MPI_Comm_set_errhandler(MPI_Comm comm, MPI_Errhandler errhandler) {
  detail::install_errhandler(comm, errhandler);
  return MPI_SUCCESS;
}

int MPI_Comm_get_errhandler(MPI_Comm comm, MPI_Errhandler* errhandler) {
  detail::comm_of(comm);  // validate the handle
  *errhandler = detail::handler_of(comm);
  return MPI_SUCCESS;
}

int MPI_Errhandler_free(MPI_Errhandler* errhandler) {
  // Registry slots are cheap; just neutralize the caller's handle (any
  // communicator the handler is attached to keeps working, per MPI).
  *errhandler = MPI_ERRHANDLER_NULL;
  return MPI_SUCCESS;
}

int MPI_Comm_call_errhandler(MPI_Comm comm, int errorcode) {
  const MPI_Errhandler handler = detail::handler_of(comm);
  if (handler == MPI_ERRORS_ARE_FATAL) {
    madmpi::fatal("MPI error (MPI_ERRORS_ARE_FATAL) raised by "
                  "MPI_Comm_call_errhandler");
  }
  if (handler >= detail::kCustomErrhandlerBase) {
    auto& s = detail::state();
    const auto index =
        static_cast<std::size_t>(handler - detail::kCustomErrhandlerBase);
    MADMPI_CHECK_MSG(index < s.errhandler_fns.size(),
                     "invalid MPI_Errhandler handle");
    MPI_Comm comm_handle = comm;
    s.errhandler_fns[index](&comm_handle, &errorcode);
  }
  return MPI_SUCCESS;
}

int MPI_Barrier(MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).barrier();
  return detail::map_error(status.code());
}

int MPI_Bcast(void* buf, int count, MPI_Datatype type, int root,
              MPI_Comm comm) {
  madmpi::Status status =
      detail::comm_of(comm).bcast(buf, count, detail::type_of(type), root);
  return detail::map_error(status.code());
}

int MPI_Reduce(const void* send_buf, void* recv_buf, int count,
               MPI_Datatype type, MPI_Op op, int root, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).reduce(
      send_buf, recv_buf, count, detail::type_of(type), detail::op_of(op),
      root);
  return detail::map_error(status.code());
}

int MPI_Allreduce(const void* send_buf, void* recv_buf, int count,
                  MPI_Datatype type, MPI_Op op, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).allreduce(
      send_buf, recv_buf, count, detail::type_of(type), detail::op_of(op));
  return detail::map_error(status.code());
}

int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_request(detail::comm_of(comm).ibarrier());
  return MPI_SUCCESS;
}

int MPI_Ibcast(void* buf, int count, MPI_Datatype type, int root,
               MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_request(
      detail::comm_of(comm).ibcast(buf, count, detail::type_of(type), root));
  return MPI_SUCCESS;
}

int MPI_Iallreduce(const void* send_buf, void* recv_buf, int count,
                   MPI_Datatype type, MPI_Op op, MPI_Comm comm,
                   MPI_Request* request) {
  *request = detail::store_request(detail::comm_of(comm).iallreduce(
      send_buf, recv_buf, count, detail::type_of(type), detail::op_of(op)));
  return MPI_SUCCESS;
}

int MPI_Gather(const void* send_buf, int send_count, MPI_Datatype send_type,
               void* recv_buf, int recv_count, MPI_Datatype recv_type,
               int root, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).gather(
      send_buf, send_count, detail::type_of(send_type), recv_buf, recv_count,
      detail::type_of(recv_type), root);
  return detail::map_error(status.code());
}

int MPI_Scatter(const void* send_buf, int send_count, MPI_Datatype send_type,
                void* recv_buf, int recv_count, MPI_Datatype recv_type,
                int root, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).scatter(
      send_buf, send_count, detail::type_of(send_type), recv_buf, recv_count,
      detail::type_of(recv_type), root);
  return detail::map_error(status.code());
}

int MPI_Allgather(const void* send_buf, int send_count,
                  MPI_Datatype send_type, void* recv_buf, int recv_count,
                  MPI_Datatype recv_type, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).allgather(
      send_buf, send_count, detail::type_of(send_type), recv_buf, recv_count,
      detail::type_of(recv_type));
  return detail::map_error(status.code());
}

int MPI_Alltoall(const void* send_buf, int send_count, MPI_Datatype send_type,
                 void* recv_buf, int recv_count, MPI_Datatype recv_type,
                 MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).alltoall(
      send_buf, send_count, detail::type_of(send_type), recv_buf, recv_count,
      detail::type_of(recv_type));
  return detail::map_error(status.code());
}

int MPI_Scan(const void* send_buf, void* recv_buf, int count,
             MPI_Datatype type, MPI_Op op, MPI_Comm comm) {
  madmpi::Status status = detail::comm_of(comm).scan(
      send_buf, recv_buf, count, detail::type_of(type), detail::op_of(op));
  return detail::map_error(status.code());
}

namespace {

std::span<const int> span_of(const int* data, int n) {
  return std::span<const int>(data, static_cast<std::size_t>(n));
}

}  // namespace

int MPI_Gatherv(const void* send_buf, int send_count, MPI_Datatype send_type,
                void* recv_buf, const int* recv_counts, const int* displs,
                MPI_Datatype recv_type, int root, MPI_Comm comm) {
  auto& c = detail::comm_of(comm);
  madmpi::Status status =
      c.gatherv(send_buf, send_count, detail::type_of(send_type), recv_buf,
                c.rank() == root ? span_of(recv_counts, c.size())
                                 : std::span<const int>(),
                c.rank() == root ? span_of(displs, c.size())
                                 : std::span<const int>(),
                detail::type_of(recv_type), root);
  return detail::map_error(status.code());
}

int MPI_Scatterv(const void* send_buf, const int* send_counts,
                 const int* displs, MPI_Datatype send_type, void* recv_buf,
                 int recv_count, MPI_Datatype recv_type, int root,
                 MPI_Comm comm) {
  auto& c = detail::comm_of(comm);
  madmpi::Status status =
      c.scatterv(send_buf,
                 c.rank() == root ? span_of(send_counts, c.size())
                                  : std::span<const int>(),
                 c.rank() == root ? span_of(displs, c.size())
                                  : std::span<const int>(),
                 detail::type_of(send_type), recv_buf, recv_count,
                 detail::type_of(recv_type), root);
  return detail::map_error(status.code());
}

int MPI_Allgatherv(const void* send_buf, int send_count,
                   MPI_Datatype send_type, void* recv_buf,
                   const int* recv_counts, const int* displs,
                   MPI_Datatype recv_type, MPI_Comm comm) {
  auto& c = detail::comm_of(comm);
  madmpi::Status status = c.allgatherv(
      send_buf, send_count, detail::type_of(send_type), recv_buf,
      span_of(recv_counts, c.size()), span_of(displs, c.size()),
      detail::type_of(recv_type));
  return detail::map_error(status.code());
}

int MPI_Alltoallv(const void* send_buf, const int* send_counts,
                  const int* send_displs, MPI_Datatype send_type,
                  void* recv_buf, const int* recv_counts,
                  const int* recv_displs, MPI_Datatype recv_type,
                  MPI_Comm comm) {
  auto& c = detail::comm_of(comm);
  madmpi::Status status = c.alltoallv(
      send_buf, span_of(send_counts, c.size()),
      span_of(send_displs, c.size()), detail::type_of(send_type), recv_buf,
      span_of(recv_counts, c.size()), span_of(recv_displs, c.size()),
      detail::type_of(recv_type));
  return detail::map_error(status.code());
}

int MPI_Win_create(void* base, MPI_Aint size, int disp_unit, MPI_Comm comm,
                   MPI_Win* win) {
  auto& s = detail::state();
  detail::ThreadState::WinSlot slot;
  slot.win = madmpi::mpi::Win::create(detail::comm_of(comm), base,
                                      static_cast<std::size_t>(size));
  slot.disp_unit = disp_unit;
  s.wins.push_back(std::move(slot));
  *win = static_cast<MPI_Win>(s.wins.size() - 1);
  return MPI_SUCCESS;
}

int MPI_Win_allocate(MPI_Aint size, int disp_unit, MPI_Comm comm,
                     void* baseptr, MPI_Win* win) {
  auto& s = detail::state();
  detail::ThreadState::WinSlot slot;
  slot.win = madmpi::mpi::Win::allocate(detail::comm_of(comm),
                                        static_cast<std::size_t>(size));
  slot.disp_unit = disp_unit;
  *static_cast<void**>(baseptr) = slot.win.base();
  s.wins.push_back(std::move(slot));
  *win = static_cast<MPI_Win>(s.wins.size() - 1);
  return MPI_SUCCESS;
}

int MPI_Win_free(MPI_Win* win) {
  auto& slot = detail::win_slot(*win);
  const madmpi::Status status = slot.win.free();
  slot.win = madmpi::mpi::Win();  // invalidate the handle slot
  *win = MPI_WIN_NULL;
  return detail::map_error(status.code());
}

int MPI_Win_fence(int assert_unused, MPI_Win win) {
  (void)assert_unused;
  return detail::map_error(detail::win_slot(win).win.fence().code());
}

int MPI_Win_lock(int lock_type, int rank, int assert_unused, MPI_Win win) {
  (void)assert_unused;
  const auto type = lock_type == MPI_LOCK_EXCLUSIVE
                        ? madmpi::mpi::RmaLockType::kExclusive
                        : madmpi::mpi::RmaLockType::kShared;
  return detail::map_error(detail::win_slot(win).win.lock(type, rank).code());
}

int MPI_Win_unlock(int rank, MPI_Win win) {
  return detail::map_error(detail::win_slot(win).win.unlock(rank).code());
}

int MPI_Put(const void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win) {
  (void)target_count;  // the target mirrors the origin contiguously
  (void)target_type;
  auto& slot = detail::win_slot(win);
  const std::uint64_t offset = static_cast<std::uint64_t>(target_disp) *
                               static_cast<std::uint64_t>(slot.disp_unit);
  madmpi::Status status;
  madmpi::mpi::RmaType element;
  if (detail::primitive_rma_type(origin_type, &element)) {
    status = slot.win.put(origin, origin_count, element, target_rank, offset);
  } else {
    // Derived datatype: pack at the origin, travel as raw bytes (no
    // element swap — matching the two-sided packed-wire convention).
    const madmpi::mpi::Datatype type = detail::type_of(origin_type);
    std::vector<std::byte> staging(type.size() *
                                   static_cast<std::size_t>(origin_count));
    type.pack(origin, origin_count, staging.data());
    status = slot.win.put(staging.data(), static_cast<int>(staging.size()),
                          madmpi::mpi::RmaType::kByte, target_rank, offset);
  }
  return detail::map_error(status.code());
}

int MPI_Get(void* origin, int origin_count, MPI_Datatype origin_type,
            int target_rank, MPI_Aint target_disp, int target_count,
            MPI_Datatype target_type, MPI_Win win) {
  (void)target_count;
  (void)target_type;
  auto& slot = detail::win_slot(win);
  const std::uint64_t offset = static_cast<std::uint64_t>(target_disp) *
                               static_cast<std::uint64_t>(slot.disp_unit);
  madmpi::mpi::RmaType element;
  if (detail::primitive_rma_type(origin_type, &element)) {
    return detail::map_error(
        slot.win.get(origin, origin_count, element, target_rank, offset)
            .code());
  }
  // Derived: fetch raw bytes, complete the get locally, then scatter them
  // into the origin layout.
  const madmpi::mpi::Datatype type = detail::type_of(origin_type);
  std::vector<std::byte> staging(type.size() *
                                 static_cast<std::size_t>(origin_count));
  madmpi::Status status =
      slot.win.get(staging.data(), static_cast<int>(staging.size()),
                   madmpi::mpi::RmaType::kByte, target_rank, offset);
  if (status.is_ok()) status = slot.win.flush_local();
  if (status.is_ok()) type.unpack(staging.data(), origin_count, origin);
  return detail::map_error(status.code());
}

int MPI_Accumulate(const void* origin, int origin_count,
                   MPI_Datatype origin_type, int target_rank,
                   MPI_Aint target_disp, int target_count,
                   MPI_Datatype target_type, MPI_Op op, MPI_Win win) {
  (void)target_count;
  (void)target_type;
  auto& slot = detail::win_slot(win);
  madmpi::mpi::RmaType element;
  MADMPI_CHECK_MSG(detail::primitive_rma_type(origin_type, &element),
                   "MPI_Accumulate requires a predefined datatype");
  const std::uint64_t offset = static_cast<std::uint64_t>(target_disp) *
                               static_cast<std::uint64_t>(slot.disp_unit);
  return detail::map_error(slot.win
                               .accumulate(origin, origin_count, element,
                                           detail::rma_op_of(op), target_rank,
                                           offset)
                               .code());
}

double MPI_Wtime() { return detail::comm_of(MPI_COMM_WORLD).wtime(); }

// ------------------------------------------------- derived datatypes

int MPI_Type_contiguous(int count, MPI_Datatype old_type,
                        MPI_Datatype* new_type) {
  *new_type = detail::store_type(
      madmpi::mpi::Datatype::contiguous(count, detail::type_of(old_type)));
  return MPI_SUCCESS;
}

int MPI_Type_vector(int count, int block_length, int stride,
                    MPI_Datatype old_type, MPI_Datatype* new_type) {
  *new_type = detail::store_type(madmpi::mpi::Datatype::vector(
      count, block_length, stride, detail::type_of(old_type)));
  return MPI_SUCCESS;
}

int MPI_Type_commit(MPI_Datatype*) { return MPI_SUCCESS; }

int MPI_Type_free(MPI_Datatype* type) {
  // Handles are cheap value objects; just neutralize the caller's handle.
  *type = MPI_BYTE;
  return MPI_SUCCESS;
}

int MPI_Type_size(MPI_Datatype type, int* size) {
  *size = static_cast<int>(detail::type_of(type).size());
  return MPI_SUCCESS;
}

int MPI_Pack_size(int count, MPI_Datatype type, MPI_Comm, int* size) {
  *size = static_cast<int>(madmpi::mpi::pack_size(count,
                                                  detail::type_of(type)));
  return MPI_SUCCESS;
}

int MPI_Pack(const void* in, int count, MPI_Datatype type, void* out,
             int out_size, int* position, MPI_Comm) {
  auto pos = static_cast<std::size_t>(*position);
  madmpi::mpi::pack(in, count, detail::type_of(type), out,
                    static_cast<std::size_t>(out_size), &pos);
  *position = static_cast<int>(pos);
  return MPI_SUCCESS;
}

int MPI_Unpack(const void* in, int in_size, int* position, void* out,
               int count, MPI_Datatype type, MPI_Comm) {
  auto pos = static_cast<std::size_t>(*position);
  madmpi::mpi::unpack(in, static_cast<std::size_t>(in_size), &pos, out,
                      count, detail::type_of(type));
  *position = static_cast<int>(pos);
  return MPI_SUCCESS;
}

// ------------------------------------------------- persistent requests

int MPI_Send_init(const void* buf, int count, MPI_Datatype type, int dest,
                  int tag, MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_persistent(
      madmpi::mpi::PersistentRequest::send_init(
          detail::comm_of(comm), buf, count, detail::type_of(type), dest,
          tag));
  return MPI_SUCCESS;
}

int MPI_Recv_init(void* buf, int count, MPI_Datatype type, int source,
                  int tag, MPI_Comm comm, MPI_Request* request) {
  *request = detail::store_persistent(
      madmpi::mpi::PersistentRequest::recv_init(
          detail::comm_of(comm), buf, count, detail::type_of(type), source,
          tag));
  return MPI_SUCCESS;
}

int MPI_Start(MPI_Request* request) {
  detail::persistent_of(*request).start();
  return MPI_SUCCESS;
}

int MPI_Startall(int count, MPI_Request* requests) {
  for (int i = 0; i < count; ++i) MPI_Start(&requests[i]);
  return MPI_SUCCESS;
}

int MPI_Request_free(MPI_Request* request) {
  if (*request >= detail::kPersistentBase) {
    detail::persistent_of(*request) = madmpi::mpi::PersistentRequest();
  }
  *request = MPI_REQUEST_NULL;
  return MPI_SUCCESS;
}

// ----------------------------------------------------- buffered sends

int MPI_Buffer_attach(void*, int size) {
  madmpi::mpi::Comm::buffer_attach(static_cast<std::size_t>(size));
  detail::state().bsend_attached_size = size;
  return MPI_SUCCESS;
}

int MPI_Buffer_detach(void* buffer_addr, int* size) {
  madmpi::mpi::Comm::buffer_detach();
  if (size != nullptr) *size = detail::state().bsend_attached_size;
  if (buffer_addr != nullptr) {
    *static_cast<void**>(buffer_addr) = nullptr;
  }
  detail::state().bsend_attached_size = 0;
  return MPI_SUCCESS;
}

int MPI_Bsend(const void* buf, int count, MPI_Datatype type, int dest,
              int tag, MPI_Comm comm) {
  detail::comm_of(comm).bsend(buf, count, detail::type_of(type), dest, tag);
  return MPI_SUCCESS;
}

// --------------------------------------------- multi-request completion

int MPI_Waitany(int count, MPI_Request* requests, int* index,
                MPI_Status* status) {
  for (;;) {
    bool any_valid = false;
    for (int i = 0; i < count; ++i) {
      if (requests[i] == MPI_REQUEST_NULL) continue;
      any_valid = true;
      int flag = 0;
      MPI_Test(&requests[i], &flag, status);
      if (flag != 0) {
        *index = i;
        return MPI_SUCCESS;
      }
    }
    MADMPI_CHECK_MSG(any_valid, "MPI_Waitany on all-null requests");
    madmpi::marcel::cooperative_yield();
  }
}

int MPI_Testall(int count, MPI_Request* requests, int* flag,
                MPI_Status* statuses) {
  // First a non-destructive completeness check...
  for (int i = 0; i < count; ++i) {
    if (requests[i] == MPI_REQUEST_NULL) continue;
    const bool done =
        requests[i] >= detail::kPersistentBase
            ? (!detail::persistent_of(requests[i]).active() ||
               detail::persistent_of(requests[i]).done())
            : detail::request_of(requests[i]).state()->completed();
    if (!done) {
      // Testall spin loops must let peer fibers run on the sharded
      // engine (the completeness probe above bypasses Request::test and
      // its yield).
      madmpi::marcel::cooperative_yield();
      *flag = 0;
      return MPI_SUCCESS;
    }
  }
  // ...then consume them all.
  for (int i = 0; i < count; ++i) {
    if (requests[i] == MPI_REQUEST_NULL) continue;
    MPI_Wait(&requests[i],
             statuses == MPI_STATUSES_IGNORE ? nullptr : &statuses[i]);
  }
  *flag = 1;
  return MPI_SUCCESS;
}

// --------------------------------------------------------- cancellation

int MPI_Cancel(MPI_Request* request) {
  // Best-effort and local, per MPI §3.8.4: if the operation already
  // matched (or is a persistent handle, which this facade does not try to
  // unpost), the cancel is simply ineffective and the request completes
  // normally. The caller still must MPI_Wait/MPI_Test the request.
  if (*request != MPI_REQUEST_NULL && *request < detail::kPersistentBase) {
    detail::request_of(*request).cancel();
  }
  return MPI_SUCCESS;
}

int MPI_Test_cancelled(const MPI_Status* status, int* flag) {
  *flag = status->internal_cancelled;
  return MPI_SUCCESS;
}

// ------------------------------------------------ cartesian topologies

int MPI_Dims_create(int nnodes, int ndims, int* dims) {
  const auto balanced =
      madmpi::mpi::CartComm::balanced_dims(nnodes, ndims);
  for (int d = 0; d < ndims; ++d) {
    // MPI semantics: nonzero entries are constraints; we only fill zeros
    // (and require the all-zero common case).
    if (dims[d] == 0) dims[d] = balanced[static_cast<std::size_t>(d)];
  }
  return MPI_SUCCESS;
}

int MPI_Cart_create(MPI_Comm comm, int ndims, const int* dims,
                    const int* periods, int reorder, MPI_Comm* cart_comm) {
  std::vector<int> dim_vec(dims, dims + ndims);
  // std::vector<bool> cannot view as span<const bool>; use a flat array.
  auto period_arr = std::make_unique<bool[]>(static_cast<std::size_t>(ndims));
  for (int d = 0; d < ndims; ++d) period_arr[d] = periods[d] != 0;
  auto cart = madmpi::mpi::CartComm::create(
      detail::comm_of(comm), dim_vec,
      std::span<const bool>(period_arr.get(),
                            static_cast<std::size_t>(ndims)),
      reorder != 0);
  if (!cart.valid()) {
    *cart_comm = MPI_COMM_NULL;
    return MPI_SUCCESS;
  }
  *cart_comm = detail::store_comm(cart.comm());
  // Like dup/split, the derived communicator inherits the parent's error
  // handler (MPI §8.3).
  if (*cart_comm != MPI_COMM_NULL) {
    detail::install_errhandler(*cart_comm, detail::handler_of(comm));
  }
  detail::state().carts[*cart_comm] = std::move(cart);
  return MPI_SUCCESS;
}

namespace {

madmpi::mpi::CartComm& cart_of(MPI_Comm handle) {
  auto& carts = detail::state().carts;
  auto it = carts.find(handle);
  MADMPI_CHECK_MSG(it != carts.end(), "not a cartesian communicator handle");
  return it->second;
}

}  // namespace

int MPI_Cart_coords(MPI_Comm cart_comm, int rank, int maxdims, int* coords) {
  const auto result = cart_of(cart_comm).coords(rank);
  for (int d = 0; d < maxdims && d < static_cast<int>(result.size()); ++d) {
    coords[d] = result[static_cast<std::size_t>(d)];
  }
  return MPI_SUCCESS;
}

int MPI_Cart_rank(MPI_Comm cart_comm, const int* coords, int* rank) {
  auto& cart = cart_of(cart_comm);
  *rank = cart.rank_at(std::span<const int>(
      coords, static_cast<std::size_t>(cart.ndims())));
  return MPI_SUCCESS;
}

int MPI_Cart_shift(MPI_Comm cart_comm, int direction, int displacement,
                   int* source, int* dest) {
  const auto shift = cart_of(cart_comm).shift(direction, displacement);
  *source = shift.source == madmpi::kInvalidRank ? MPI_PROC_NULL
                                                 : shift.source;
  *dest = shift.dest == madmpi::kInvalidRank ? MPI_PROC_NULL : shift.dest;
  return MPI_SUCCESS;
}
