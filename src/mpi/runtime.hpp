// The runtime services the generic MPI layer needs from its host (the
// core::Session implements this over the simulated cluster).
#pragma once

#include "mpi/adi.hpp"
#include "mpi/matching.hpp"
#include "sim/node.hpp"

namespace madmpi::mpi {

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Number of ranks in the world.
  virtual int world_size() const = 0;

  /// The machine hosting a global rank (its clock is MPI_Wtime's source).
  virtual sim::Node& node_of(rank_t global) = 0;

  /// The matching context of a global rank.
  virtual RankContext& context_of(rank_t global) = 0;

  /// Device selected for src -> dst traffic (the ADI multi-device
  /// dispatch: ch_self for self, smp_plug within a node, ch_mad across
  /// nodes — paper §4.1).
  virtual Device& device_for(rank_t src, rank_t dst) = 0;

  /// Deterministic collective context-id derivation: all ranks of a
  /// communicator calling with the same (parent_context, key) receive the
  /// same fresh id; distinct keys receive distinct ids. `key` encodes the
  /// creation sequence number and (for split) the color.
  virtual int derive_context_id(int parent_context, std::int64_t key) = 0;
};

}  // namespace madmpi::mpi
