// The runtime services the generic MPI layer needs from its host (the
// core::Session implements this over the simulated cluster).
#pragma once

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "mpi/adi.hpp"
#include "mpi/coll_offload.hpp"
#include "mpi/coll_types.hpp"
#include "mpi/matching.hpp"
#include "sim/node.hpp"

namespace madmpi::mpi {

/// What the collective engine knows about the best route between two global
/// ranks — a digest of the ch_mad channel election, not the channel itself.
/// `quality` is an ordinal (higher = faster protocol class, 0 = same rank);
/// the offload fields mirror the elected link's LinkCostModel collective-
/// offload extension and are meaningful only when `offload` is true.
struct CollLink {
  int quality = 1;
  bool offload = false;
  usec_t offload_post_us = 0.0;
  usec_t offload_hop_us = 0.0;
  double offload_bytes_per_us = 1.0;
  usec_t offload_notify_us = 0.0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Number of ranks in the world.
  virtual int world_size() const = 0;

  /// The machine hosting a global rank (its clock is MPI_Wtime's source).
  virtual sim::Node& node_of(rank_t global) = 0;

  /// The matching context of a global rank.
  virtual RankContext& context_of(rank_t global) = 0;

  /// Device selected for src -> dst traffic (the ADI multi-device
  /// dispatch: ch_self for self, smp_plug within a node, ch_mad across
  /// nodes — paper §4.1).
  virtual Device& device_for(rank_t src, rank_t dst) = 0;

  /// Deterministic collective context-id derivation: all ranks of a
  /// communicator calling with the same (parent_context, key) receive the
  /// same fresh id; distinct keys receive distinct ids. `key` encodes the
  /// creation sequence number and (for split) the color.
  virtual int derive_context_id(int parent_context, std::int64_t key) = 0;

  /// Link digest between two global ranks for the hierarchical collective
  /// engine: the elected protocol's performance class and its NIC-offload
  /// capability. The default (uniform quality, no offload) reproduces the
  /// flat single-island topology, so hosts that don't override this keep
  /// the historical algorithms.
  virtual CollLink coll_link(rank_t a_global, rank_t b_global) {
    CollLink link;
    link.quality = (a_global == b_global) ? 0 : 1;
    return link;
  }

  /// Failure detector for the fault-tolerant collectives: true when the
  /// host knows data can no longer flow from `from` to `to` (every route
  /// dead, in that direction — link faults are directional). The default
  /// never reports a failure, so hosts without fault modelling keep the
  /// pre-FT behaviour.
  virtual bool peer_unreachable(rank_t from_global, rank_t to_global) {
    (void)from_global;
    (void)to_global;
    return false;
  }

  // --- Collective engine services --------------------------------------

  /// The NIC-offload rendezvous board (modeled firmware trees). Lives on
  /// the runtime because one offloaded operation spans every leader rank,
  /// while derived communicators clone their Shared state per rank.
  CollOffloadBoard& coll_offload_board() { return offload_board_; }

  /// The auto-tuner's session-wide decision table (invalid until
  /// MADMPI_COLL_TUNE ran tune_collectives). kAuto resolution consults it.
  CollDecisionTable coll_decision_table() const {
    std::lock_guard<std::mutex> lock(coll_table_mutex_);
    return coll_table_;
  }
  void set_coll_decision_table(const CollDecisionTable& table) {
    std::lock_guard<std::mutex> lock(coll_table_mutex_);
    coll_table_ = table;
  }

  // --- Communicator revocation (ULFM Comm::revoke) --------------------
  //
  // The registry lives on the runtime (not a process-global) so each
  // session's revocations die with it. In a real MPI the revocation
  // would be flooded over the wire; within one simulated session the
  // shared registry models the post-flood steady state. The atomic count
  // keeps the not-revoked fast path off the mutex — every operation
  // entry consults it.

  bool context_revoked(int context) const {
    if (revoked_count_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(revoked_mutex_);
    return std::find(revoked_contexts_.begin(), revoked_contexts_.end(),
                     context) != revoked_contexts_.end();
  }

  void revoke_context(int context) {
    std::lock_guard<std::mutex> lock(revoked_mutex_);
    if (std::find(revoked_contexts_.begin(), revoked_contexts_.end(),
                  context) == revoked_contexts_.end()) {
      revoked_contexts_.push_back(context);
      revoked_count_.fetch_add(1, std::memory_order_release);
    }
  }

 private:
  CollOffloadBoard offload_board_;
  mutable std::mutex coll_table_mutex_;
  CollDecisionTable coll_table_;

  mutable std::mutex revoked_mutex_;
  std::vector<int> revoked_contexts_;
  std::atomic<int> revoked_count_{0};
};

}  // namespace madmpi::mpi
