#include "mpi/coll_offload.hpp"

#include <algorithm>
#include <cstring>

#include "common/status.hpp"
#include "marcel/engine.hpp"

namespace madmpi::mpi {

std::shared_ptr<CollOffloadBoard::Op> CollOffloadBoard::op_for(
    std::uint64_t key, int expected) {
  // Callers hold mutex_.
  std::shared_ptr<Op>& slot = ops_[key];
  if (!slot) {
    slot = std::make_shared<Op>();
    slot->expected = expected;
  }
  MADMPI_CHECK_MSG(slot->expected == expected,
                   "offload participants disagree on the leader count");
  return slot;
}

void CollOffloadBoard::depart(std::uint64_t key, Op& op) {
  // Callers hold mutex_. The shared_ptr keeps the Op alive for any peer
  // still unwinding its wait; erasing only drops the map entry.
  if (++op.departed == op.expected) ops_.erase(key);
}

usec_t CollOffloadBoard::barrier(std::uint64_t key, int expected,
                                 usec_t posted_us, usec_t tree_us) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::shared_ptr<Op> op = op_for(key, expected);
  op->max_posted_us = std::max(op->max_posted_us, posted_us);
  if (++op->arrived == op->expected) {
    op->cv.notify_all();
    marcel::engine_notify();
  }
  Op* raw = op.get();
  marcel::engine_wait(lock, op->cv,
                      [raw] { return raw->arrived == raw->expected; });
  // max() over the posted stamps is order-independent, so every leader
  // computes the same completion time no matter the host schedule.
  const usec_t done = op->max_posted_us + tree_us;
  depart(key, *op);
  return done;
}

void CollOffloadBoard::bcast_put(std::uint64_t key, int expected,
                                 usec_t posted_us, const std::byte* data,
                                 std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<Op> op = op_for(key, expected);
  op->payload.assign(data, data + bytes);
  op->root_posted_us = posted_us;
  op->root_posted = true;
  op->cv.notify_all();
  marcel::engine_notify();
  depart(key, *op);
}

usec_t CollOffloadBoard::bcast_get(std::uint64_t key, int expected,
                                   usec_t posted_us, usec_t tree_us,
                                   std::byte* out, std::size_t bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::shared_ptr<Op> op = op_for(key, expected);
  Op* raw = op.get();
  marcel::engine_wait(lock, op->cv, [raw] { return raw->root_posted; });
  MADMPI_CHECK(op->payload.size() == bytes);
  if (bytes > 0) std::memcpy(out, op->payload.data(), bytes);
  const usec_t done = std::max(posted_us, op->root_posted_us + tree_us);
  depart(key, *op);
  return done;
}

}  // namespace madmpi::mpi
