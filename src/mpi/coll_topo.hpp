// Per-communicator topology digest for the hierarchical collective engine.
//
// The digest condenses what ch_mad already knows — which ranks share a node
// (smp_plug islands) and which protocol the router elects per node pair —
// into the three-level structure the algorithms walk:
//
//   island   = the ranks of one node (members[0] is the leader)
//   cluster  = islands connected by better-than-worst links (e.g. the SCI
//              machines of a cluster-of-clusters; the worst protocol — the
//              TCP interconnect — only appears between clusters)
//   reps     = one leader per cluster (the only ranks that ever cross the
//              interconnect)
//
// Built once per communicator from the Runtime::coll_link digest and
// cached: a pure function of the (live) topology, identical on every rank.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "mpi/types.hpp"

namespace madmpi::mpi {

class Runtime;

struct CollTopo {
  struct Island {
    /// Comm ranks on this node, ascending; members[0] is the leader.
    std::vector<rank_t> members;
    int cluster = 0;
  };

  /// Islands ordered by leader rank (deterministic across ranks).
  std::vector<Island> islands;
  /// comm rank -> index into islands.
  std::vector<int> island_of;
  /// cluster -> island indices; clusters[c][0]'s leader is the cluster rep.
  std::vector<std::vector<int>> clusters;

  /// True when the whole communicator is one node (or one rank): the
  /// hierarchy collapses and kAuto resolves to the flat algorithms.
  bool single_island() const { return islands.size() <= 1; }
  bool single_cluster() const { return clusters.size() <= 1; }

  rank_t leader_of_island(int island) const {
    return islands[static_cast<std::size_t>(island)].members[0];
  }
  rank_t rep_of_cluster(int cluster) const {
    return leader_of_island(clusters[static_cast<std::size_t>(cluster)][0]);
  }

  /// NIC offload: true when every inter-island leader link supports the
  /// modeled collective offload (single protocol class among leaders).
  bool offload_capable = false;
  usec_t offload_post_us = 0.0;
  usec_t offload_hop_us = 0.0;
  double offload_bytes_per_us = 1.0;
  usec_t offload_notify_us = 0.0;
};

/// Build the digest for `group` (comm rank -> global rank). Deterministic:
/// depends only on the runtime's node mapping and coll_link answers.
std::shared_ptr<const CollTopo> build_coll_topo(
    Runtime& runtime, const std::vector<rank_t>& group);

// Member-list construction for the hierarchical trees, re-rooted at the
// user's root: the root stands in for its island's leader and its
// cluster's rep, so data originates/terminates at the root without an
// extra hop. Shared by the blocking engine (coll_hier.cpp) and the
// nonblocking schedules (coll_sched.cpp).

/// Leaders of one cluster's islands, effective rep first.
std::vector<rank_t> cluster_leader_list(const CollTopo& topo, int cluster,
                                        int root_island, rank_t root);
/// One island's members, effective leader first.
std::vector<rank_t> island_member_list(const CollTopo& topo, int island,
                                       int root_island, rank_t root);
/// One effective rep per cluster, the root's cluster first.
std::vector<rank_t> rep_list(const CollTopo& topo, int root_cluster,
                             rank_t root);

}  // namespace madmpi::mpi
