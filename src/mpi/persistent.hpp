// Persistent communication requests (MPI_Send_init / MPI_Recv_init /
// MPI_Start): the argument list is frozen once, the operation restarted
// cheaply per iteration — the classic optimization for fixed halo-exchange
// patterns.
#pragma once

#include "common/status.hpp"
#include "mpi/comm.hpp"

namespace madmpi::mpi {

class PersistentRequest {
 public:
  PersistentRequest() = default;

  /// MPI_Send_init.
  static PersistentRequest send_init(Comm comm, const void* buf, int count,
                                     const Datatype& type, rank_t dest,
                                     int tag) {
    PersistentRequest request;
    request.kind_ = Kind::kSend;
    request.comm_ = std::move(comm);
    request.buffer_ = const_cast<void*>(buf);
    request.count_ = count;
    request.type_ = type;
    request.peer_ = dest;
    request.tag_ = tag;
    return request;
  }

  /// MPI_Recv_init.
  static PersistentRequest recv_init(Comm comm, void* buf, int count,
                                     const Datatype& type, rank_t source,
                                     int tag) {
    PersistentRequest request;
    request.kind_ = Kind::kRecv;
    request.comm_ = std::move(comm);
    request.buffer_ = buf;
    request.count_ = count;
    request.type_ = type;
    request.peer_ = source;
    request.tag_ = tag;
    return request;
  }

  bool valid() const { return kind_ != Kind::kNone; }
  bool active() const { return active_.valid(); }

  /// Non-consuming: true when the active operation has completed (a
  /// subsequent wait()/test() will not block). False when inactive.
  bool done() {
    return active_.valid() && active_.state()->completed();
  }

  /// MPI_Start: post the operation. The request must not be active.
  void start() {
    MADMPI_CHECK_MSG(valid(), "start on an uninitialized persistent request");
    MADMPI_CHECK_MSG(!active(), "start on an already active request");
    if (kind_ == Kind::kSend) {
      active_ = comm_.isend(buffer_, count_, type_, peer_, tag_);
    } else {
      active_ = comm_.irecv(buffer_, count_, type_, peer_, tag_);
    }
  }

  /// MPI_Wait on the active operation; the request becomes inactive and
  /// can be started again.
  MpiStatus wait() {
    MADMPI_CHECK_MSG(active(), "wait on an inactive persistent request");
    const MpiStatus status = active_.wait();
    active_ = Request();
    return status;
  }

  /// MPI_Test; on completion the request becomes inactive.
  bool test(MpiStatus* status = nullptr) {
    MADMPI_CHECK_MSG(active(), "test on an inactive persistent request");
    if (!active_.test(status)) return false;
    active_ = Request();
    return true;
  }

 private:
  enum class Kind { kNone, kSend, kRecv };
  Kind kind_ = Kind::kNone;
  Comm comm_;
  void* buffer_ = nullptr;
  int count_ = 0;
  Datatype type_ = Datatype::byte();
  rank_t peer_ = kInvalidRank;
  int tag_ = 0;
  Request active_;
};

}  // namespace madmpi::mpi
