#include "mpi/win.hpp"

#include <cstring>
#include <string>
#include <vector>

#include "common/datapath_stats.hpp"
#include "marcel/engine.hpp"
#include "mpi/adi.hpp"
#include "mpi/comm_shared.hpp"
#include "mpi/runtime.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::mpi {

// Per-rank window state: each rank's Win handle owns its own State (the
// collective agreement is the window id and the exchanged sizes). The
// target-side WinTarget is reached by peers through the RankContext
// registry; everything else is local to the owning rank's thread.
struct Win::State {
  Comm comm;
  std::uint64_t win_id = 0;
  std::unique_ptr<WinTarget> local = std::make_unique<WinTarget>();

  // Per-peer window sizes (comm-rank indexed), exchanged at creation for
  // origin-side bounds checking.
  std::vector<std::uint64_t> peer_bytes;

  // Access-epoch tracking.
  bool fence_open = false;
  std::map<rank_t, RmaLockType> locked;  // comm rank -> lock type held

  // Cumulative data-bearing ops sent per remote target (comm rank), and
  // the level already covered by a completed fence/unlock.
  std::map<rank_t, std::uint64_t> sent;
  std::map<rank_t, std::uint64_t> synced;

  // Outstanding gets (their replies complete these requests).
  std::vector<Request> pending_gets;

  bool freed = false;
};

namespace {

/// Byte-swap `bytes` wire bytes of `type` elements in place.
void swap_wire(RmaType type, std::byte* data, std::size_t bytes) {
  if (rma_type_width(type) <= 1 || bytes == 0) return;
  rma_datatype(type).swap_packed_bytes(data, bytes);
}

}  // namespace

Win Win::init(const Comm& comm, void* base, std::size_t bytes,
              ChunkRef backing) {
  MADMPI_CHECK_MSG(comm.valid(), "Win over an invalid communicator");
  Win win;
  win.state_ = std::make_shared<State>();
  State& s = *win.state_;
  s.comm = comm;
  s.local->base = static_cast<std::byte*>(base);
  s.local->bytes = bytes;
  s.local->backing = std::move(backing);

  // Collectively-agreed window id: every rank consumes the same creation
  // sequence number and derives the same fresh id (variant 2 — the seq is
  // unique per creation, so the variant only documents the kind).
  const int seq = s.comm.shared_->next_seq(s.comm.rank());
  s.win_id = static_cast<std::uint64_t>(s.comm.shared_->runtime->derive_context_id(
      s.comm.shared_->context, (static_cast<std::int64_t>(seq) << 32) | 2));

  // Register before the size exchange: once the allgather completes,
  // every rank's window is resolvable by every peer's polling thread.
  s.comm.my_context().register_window(s.win_id, s.local.get());

  const std::uint64_t mine = bytes;
  s.peer_bytes.assign(static_cast<std::size_t>(s.comm.size()), 0);
  s.comm.allgather(&mine, 1, Datatype::uint64(), s.peer_bytes.data(), 1,
                   Datatype::uint64());
  return win;
}

Win Win::allocate(const Comm& comm, std::size_t bytes) {
  // Slab-backed registered region: the pool chunk pins the memory for the
  // window's lifetime, like an RDMA registration.
  ChunkRef backing = SlabPool::global().allocate(bytes);
  std::byte* base = bytes == 0 ? nullptr : backing.mutable_data();
  if (bytes != 0) std::memset(base, 0, bytes);
  return init(comm, base, bytes, std::move(backing));
}

Win Win::create(const Comm& comm, void* base, std::size_t bytes) {
  return init(comm, base, bytes, ChunkRef());
}

std::byte* Win::base() {
  MADMPI_CHECK_MSG(valid(), "base() on an invalid window");
  return state_->local->base;
}

std::size_t Win::size() const {
  MADMPI_CHECK_MSG(valid(), "size() on an invalid window");
  return state_->local->bytes;
}

std::uint64_t Win::id() const {
  MADMPI_CHECK_MSG(valid(), "id() on an invalid window");
  return state_->win_id;
}

std::uint64_t Win::puts_applied() const {
  std::lock_guard<std::mutex> lock(state_->local->mutex);
  return state_->local->puts_applied;
}

std::uint64_t Win::accumulates_applied() const {
  std::lock_guard<std::mutex> lock(state_->local->mutex);
  return state_->local->accs_applied;
}

Status Win::access_check(rank_t target, std::uint64_t offset,
                         std::uint64_t bytes) {
  State& s = *state_;
  if (s.freed) {
    return Status(ErrorCode::kInvalidArgument,
                  "one-sided access on a freed window");
  }
  if (target < 0 || target >= s.comm.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "one-sided target rank " + std::to_string(target) +
                      " outside the communicator");
  }
  if (!s.fence_open && s.locked.count(target) == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "one-sided access outside an epoch (no fence opened and "
                  "no lock held on the target)");
  }
  const std::uint64_t limit = s.peer_bytes[static_cast<std::size_t>(target)];
  if (bytes > limit || offset > limit - bytes) {
    return Status(ErrorCode::kOutOfRange,
                  "one-sided access [" + std::to_string(offset) + ", " +
                      std::to_string(offset + bytes) + ") beyond the " +
                      std::to_string(limit) + "-byte target window");
  }
  return Status::ok();
}

Status Win::put(const void* origin, int count, RmaType type, rank_t target,
                std::uint64_t target_offset) {
  State& s = *state_;
  const std::size_t width = rma_type_width(type);
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * width;
  if (Status check = access_check(target, target_offset, bytes); !check) {
    return s.comm.raise_error(check);
  }
  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Runtime* runtime = s.comm.shared_->runtime;

  if (runtime->node_of(my_global).id() == runtime->node_of(target_global).id()) {
    // Same node (or self): a plain host store under the window lock. No
    // wire format is involved, so no byte-order conversion either.
    WinTarget* win = runtime->context_of(target_global).find_window(s.win_id);
    if (win == nullptr) {
      return s.comm.raise_error(
          Status(ErrorCode::kNotConnected, "target window not registered"));
    }
    {
      std::lock_guard<std::mutex> lock(win->mutex);
      std::memcpy(win->base + target_offset, origin, bytes);
      ++win->puts_applied;
    }
    DatapathStats::global().count_copy(bytes);
    s.comm.my_node().clock().advance(static_cast<double>(bytes) *
                                     sim::kHostCopyUsPerByte);
    return Status::ok();
  }

  Device& device = s.comm.device_to(target);
  if (!device.supports_rma()) {
    return s.comm.raise_error(Status(
        ErrorCode::kProtocol, "inter-node device has no one-sided support"));
  }
  RmaDesc desc;
  desc.win_id = s.win_id;
  desc.kind = RmaKind::kPut;
  desc.type = type;
  desc.offset = target_offset;
  desc.bytes = bytes;

  // Wire data travels in the sender's byte order; a big-endian origin
  // stages and swaps (charged only when the peers genuinely differ, the
  // same convention as the two-sided path).
  byte_span payload{static_cast<const std::byte*>(origin),
                    static_cast<std::size_t>(bytes)};
  std::vector<std::byte> staging;
  if (s.comm.my_node().big_endian() && width > 1) {
    staging.assign(payload.begin(), payload.end());
    swap_wire(type, staging.data(), staging.size());
    DatapathStats::global().count_staging_alloc();
    DatapathStats::global().count_copy(staging.size());
    if (!runtime->node_of(target_global).big_endian()) {
      s.comm.my_node().clock().advance(static_cast<double>(bytes) *
                                       sim::kHostCopyUsPerByte);
    }
    payload = byte_span{staging.data(), staging.size()};
  }

  Status status =
      device.rma(my_global, target_global, desc, payload, nullptr, nullptr);
  if (!status) return s.comm.raise_error(status);
  ++s.sent[target];
  return status;
}

Status Win::accumulate(const void* origin, int count, RmaType type, RmaOp op,
                       rank_t target, std::uint64_t target_offset) {
  State& s = *state_;
  const std::size_t width = rma_type_width(type);
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * width;
  if (Status check = access_check(target, target_offset, bytes); !check) {
    return s.comm.raise_error(check);
  }
  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Runtime* runtime = s.comm.shared_->runtime;

  if (runtime->node_of(my_global).id() == runtime->node_of(target_global).id()) {
    WinTarget* win = runtime->context_of(target_global).find_window(s.win_id);
    if (win == nullptr) {
      return s.comm.raise_error(
          Status(ErrorCode::kNotConnected, "target window not registered"));
    }
    {
      std::lock_guard<std::mutex> lock(win->mutex);
      if (op == RmaOp::kReplace) {
        std::memcpy(win->base + target_offset, origin, bytes);
      } else {
        rma_op(op).apply(origin, win->base + target_offset, count,
                         rma_datatype(type));
      }
      ++win->accs_applied;
    }
    DatapathStats::global().count_copy(bytes);
    s.comm.my_node().clock().advance(static_cast<double>(bytes) *
                                     sim::kHostCopyUsPerByte);
    return Status::ok();
  }

  Device& device = s.comm.device_to(target);
  if (!device.supports_rma()) {
    return s.comm.raise_error(Status(
        ErrorCode::kProtocol, "inter-node device has no one-sided support"));
  }
  RmaDesc desc;
  desc.win_id = s.win_id;
  desc.kind = RmaKind::kAccumulate;
  desc.type = type;
  desc.op = op;
  desc.offset = target_offset;
  desc.bytes = bytes;

  byte_span payload{static_cast<const std::byte*>(origin),
                    static_cast<std::size_t>(bytes)};
  std::vector<std::byte> staging;
  if (s.comm.my_node().big_endian() && width > 1) {
    staging.assign(payload.begin(), payload.end());
    swap_wire(type, staging.data(), staging.size());
    DatapathStats::global().count_staging_alloc();
    DatapathStats::global().count_copy(staging.size());
    if (!runtime->node_of(target_global).big_endian()) {
      s.comm.my_node().clock().advance(static_cast<double>(bytes) *
                                       sim::kHostCopyUsPerByte);
    }
    payload = byte_span{staging.data(), staging.size()};
  }

  Status status =
      device.rma(my_global, target_global, desc, payload, nullptr, nullptr);
  if (!status) return s.comm.raise_error(status);
  ++s.sent[target];
  return status;
}

Status Win::get(void* origin, int count, RmaType type, rank_t target,
                std::uint64_t target_offset) {
  State& s = *state_;
  const std::size_t width = rma_type_width(type);
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * width;
  if (Status check = access_check(target, target_offset, bytes); !check) {
    return s.comm.raise_error(check);
  }
  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Runtime* runtime = s.comm.shared_->runtime;

  if (runtime->node_of(my_global).id() == runtime->node_of(target_global).id()) {
    WinTarget* win = runtime->context_of(target_global).find_window(s.win_id);
    if (win == nullptr) {
      return s.comm.raise_error(
          Status(ErrorCode::kNotConnected, "target window not registered"));
    }
    {
      std::lock_guard<std::mutex> lock(win->mutex);
      std::memcpy(origin, win->base + target_offset, bytes);
    }
    DatapathStats::global().count_copy(bytes);
    s.comm.my_node().clock().advance(static_cast<double>(bytes) *
                                     sim::kHostCopyUsPerByte);
    return Status::ok();
  }

  Device& device = s.comm.device_to(target);
  if (!device.supports_rma()) {
    return s.comm.raise_error(Status(
        ErrorCode::kProtocol, "inter-node device has no one-sided support"));
  }
  RmaDesc desc;
  desc.win_id = s.win_id;
  desc.kind = RmaKind::kGet;
  desc.type = type;
  desc.offset = target_offset;
  desc.bytes = bytes;

  auto completion = std::make_shared<RequestState>(s.comm.my_node());
  Status status =
      device.rma(my_global, target_global, desc, {}, origin, completion);
  if (!status) return s.comm.raise_error(status);
  s.pending_gets.emplace_back(std::move(completion));
  return status;
}

Status Win::flush_target(rank_t target, RmaKind kind, RmaLockType release) {
  State& s = *state_;
  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Device& device = s.comm.device_to(target);

  RmaDesc desc;
  desc.win_id = s.win_id;
  desc.kind = kind;
  desc.lock = release;
  desc.op_count = s.sent[target];

  auto completion = std::make_shared<RequestState>(s.comm.my_node());
  Status status =
      device.rma(my_global, target_global, desc, {}, nullptr, completion);
  if (!status) return status;
  s.synced[target] = s.sent[target];
  const MpiStatus ack = completion->wait();
  if (ack.error != ErrorCode::kOk) {
    return Status(ack.error, "one-sided completion fence failed");
  }
  return Status::ok();
}

Status Win::flush_local() {
  State& s = *state_;
  for (auto& get : s.pending_gets) get.wait();
  s.pending_gets.clear();
  return Status::ok();
}

Status Win::fence() {
  State& s = *state_;
  if (s.freed) {
    return s.comm.raise_error(
        Status(ErrorCode::kInvalidArgument, "fence on a freed window"));
  }
  // 1. My outstanding gets: their replies are the completion events.
  for (auto& get : s.pending_gets) get.wait();
  s.pending_gets.clear();

  // 2. Flush puts/accumulates: one cumulative sync per dirty target; the
  //    target acks once its applied-ledger catches up.
  Status failure = Status::ok();
  for (auto& [target, sent_count] : s.sent) {
    if (sent_count <= s.synced[target]) continue;
    if (Status status = flush_target(target, RmaKind::kSync,
                                     RmaLockType::kNone);
        !status) {
      failure = status;
    }
  }

  // 3. Epoch boundary for everyone: nobody leaves the fence until every
  //    rank's issued ops have landed (steps 1-2 on every rank), so puts
  //    within the closing epoch are visible afterwards.
  Status barrier = s.comm.barrier();
  s.fence_open = true;
  if (!failure) return s.comm.raise_error(failure);
  if (!barrier) return s.comm.raise_error(barrier);
  return Status::ok();
}

Status Win::lock(RmaLockType type, rank_t target) {
  State& s = *state_;
  if (type == RmaLockType::kNone) {
    return s.comm.raise_error(
        Status(ErrorCode::kInvalidArgument, "lock type must be shared or "
                                            "exclusive"));
  }
  if (target < 0 || target >= s.comm.size()) {
    return s.comm.raise_error(Status(
        ErrorCode::kInvalidArgument,
        "lock target rank " + std::to_string(target) + " outside the comm"));
  }
  if (s.locked.count(target) != 0) {
    return s.comm.raise_error(Status(ErrorCode::kInvalidArgument,
                                     "lock already held on the target"));
  }
  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Runtime* runtime = s.comm.shared_->runtime;

  if (runtime->node_of(my_global).id() == runtime->node_of(target_global).id()) {
    WinTarget* win = runtime->context_of(target_global).find_window(s.win_id);
    if (win == nullptr) {
      return s.comm.raise_error(
          Status(ErrorCode::kNotConnected, "target window not registered"));
    }
    std::unique_lock<std::mutex> guard(win->mutex);
    if (win->grantable(type)) {
      win->acquire(type);
    } else {
      // Queue behind earlier waiters (FIFO): the grant closure fires when
      // the releaser hands the lock over (possibly from a poller thread).
      auto granted = std::make_shared<bool>(false);
      win->waiters.push_back(
          {type, [win, granted] {
             {
               std::lock_guard<std::mutex> relock(win->mutex);
               *granted = true;
             }
             win->cv.notify_all();
             marcel::engine_notify();
           }});
      marcel::engine_wait(guard, win->cv, [&] { return *granted; });
    }
  } else {
    Device& device = s.comm.device_to(target);
    if (!device.supports_rma()) {
      return s.comm.raise_error(Status(
          ErrorCode::kProtocol, "inter-node device has no one-sided support"));
    }
    RmaDesc desc;
    desc.win_id = s.win_id;
    desc.kind = RmaKind::kLock;
    desc.lock = type;
    auto completion = std::make_shared<RequestState>(s.comm.my_node());
    Status status =
        device.rma(my_global, target_global, desc, {}, nullptr, completion);
    if (!status) return s.comm.raise_error(status);
    const MpiStatus grant = completion->wait();
    if (grant.error != ErrorCode::kOk) {
      return s.comm.raise_error(Status(grant.error, "lock request failed"));
    }
  }
  s.locked[target] = type;
  return Status::ok();
}

Status Win::unlock(rank_t target) {
  State& s = *state_;
  auto held = s.locked.find(target);
  if (held == s.locked.end()) {
    return s.comm.raise_error(
        Status(ErrorCode::kInvalidArgument, "unlock without a held lock"));
  }
  const RmaLockType type = held->second;

  // Gets issued under the lock complete before the release (MPI unlock
  // semantics: all ops are done when unlock returns).
  for (auto& get : s.pending_gets) get.wait();
  s.pending_gets.clear();

  const rank_t my_global = s.comm.global_rank_of(s.comm.rank());
  const rank_t target_global = s.comm.global_rank_of(target);
  Runtime* runtime = s.comm.shared_->runtime;

  Status status = Status::ok();
  if (runtime->node_of(my_global).id() == runtime->node_of(target_global).id()) {
    WinTarget* win = runtime->context_of(target_global).find_window(s.win_id);
    if (win == nullptr) {
      status = Status(ErrorCode::kNotConnected, "target window vanished");
    } else {
      std::vector<std::function<void()>> grants;
      {
        std::lock_guard<std::mutex> lock(win->mutex);
        grants = win->release_and_grant(type);
      }
      for (auto& grant : grants) grant();
    }
  } else {
    // The release rides the completion fence: the target drops the lock
    // only after every op sent under it has been applied, then acks.
    status = flush_target(target, RmaKind::kUnlock, type);
  }
  s.locked.erase(held);
  if (!status) return s.comm.raise_error(status);
  return status;
}

Status Win::free() {
  State& s = *state_;
  if (s.freed) return Status::ok();

  // Quiesce: complete my gets and flush my puts everywhere, then a
  // barrier — after it, no rank has one-sided traffic for this window in
  // flight anywhere, so unregistering is safe.
  for (auto& get : s.pending_gets) get.wait();
  s.pending_gets.clear();
  Status failure = Status::ok();
  for (auto& [target, sent_count] : s.sent) {
    if (sent_count <= s.synced[target]) continue;
    if (Status status = flush_target(target, RmaKind::kSync,
                                     RmaLockType::kNone);
        !status) {
      failure = status;
    }
  }
  Status barrier = s.comm.barrier();

  s.comm.my_context().unregister_window(s.win_id);
  s.local->backing = ChunkRef();  // release the slab registration
  s.freed = true;
  s.fence_open = false;
  if (!failure) return s.comm.raise_error(failure);
  if (!barrier) return s.comm.raise_error(barrier);
  return Status::ok();
}

}  // namespace madmpi::mpi
