// The modeled NIC-offload rendezvous board for collective operations.
//
// An offloaded barrier/bcast (the Quadrics/Myrinet NIC-collective papers)
// runs its combine/forward tree in NIC firmware: each island leader's host
// posts one descriptor and goes idle; the NICs chain the operation among
// themselves and raise a completion flag. In the simulation the "NIC tree"
// is this board: leaders record the virtual time at which their descriptor
// post finished, and the tree's completion time is computed *from those
// stamps alone* — max() over arrivals plus the modeled firmware cost — so
// it is independent of host scheduling order and replays deterministically.
//
// Real blocking (a leader whose peers have not posted yet) uses an
// engine-aware condition wait, so the board is neutral across the threaded
// and sharded engines. Virtual time flows only through the returned
// completion stamps (callers sync_to() them), exactly like semaphore
// release stamps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace madmpi::mpi {

class CollOffloadBoard {
 public:
  /// Offloaded barrier. `key` identifies one operation instance (context +
  /// lockstep sequence number); `expected` leaders join; `posted_us` is the
  /// caller's lane time after charging its descriptor post; `tree_us` is
  /// the modeled NIC combine+release cost (identical on every caller).
  /// Blocks until all leaders posted, then returns the uniform completion
  /// stamp max(posted) + tree_us.
  usec_t barrier(std::uint64_t key, int expected, usec_t posted_us,
                 usec_t tree_us);

  /// Offloaded bcast, root side: stage the payload and the root's post
  /// stamp. Does not block — the NIC tree forwards without waiting for
  /// receivers to arm.
  void bcast_put(std::uint64_t key, int expected, usec_t posted_us,
                 const std::byte* data, std::size_t bytes);

  /// Offloaded bcast, leaf side: wait until the root posted, copy the
  /// payload out, and return this leaf's completion stamp
  /// max(own posted_us, root stamp + tree_us) — a leaf that armed late
  /// sees the data the moment it arms; an early one waits for the tree.
  usec_t bcast_get(std::uint64_t key, int expected, usec_t posted_us,
                   usec_t tree_us, std::byte* out, std::size_t bytes);

 private:
  struct Op {
    int expected = 0;
    int arrived = 0;    // barrier: descriptors posted so far
    int departed = 0;   // participants done with this entry (GC)
    usec_t max_posted_us = 0.0;
    bool root_posted = false;  // bcast: payload staged
    usec_t root_posted_us = 0.0;
    std::vector<std::byte> payload;
    std::condition_variable cv;
  };

  std::shared_ptr<Op> op_for(std::uint64_t key, int expected);
  void depart(std::uint64_t key, Op& op);

  std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Op>> ops_;
};

}  // namespace madmpi::mpi
