// MPI request objects. A request is completed exactly once — by a polling
// thread (ch_mad), by the sender thread (smp_plug/ch_self), or by a
// temporary rendezvous thread — and waited on by the rank's control thread.
// Completion carries virtual time through the marcel::Semaphore, so a
// waiter's clock never runs behind its completer's.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "marcel/semaphore.hpp"
#include "mpi/types.hpp"

namespace madmpi::mpi {

class RequestState {
 public:
  explicit RequestState(sim::Node& node) : done_(node, 0) {}

  /// Called by the completing thread.
  void complete(const MpiStatus& status) {
    std::function<void(const MpiStatus&)> hook;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      MADMPI_CHECK_MSG(!completed_, "request completed twice");
      status_ = status;
      completed_ = true;
      hook = std::move(on_complete_);
      on_complete_ = nullptr;
    }
    done_.signal();
    // The hook runs on the completing context (a poller, a device thread,
    // a fiber resume) with the completer's virtual-time lane installed —
    // this is how nonblocking-collective schedules advance from the
    // progress engine instead of from a hidden blocking call.
    if (hook) hook(status);
  }

  /// Blocking wait (MPI_Wait).
  MpiStatus wait() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (consumed_) return status_;  // already waited/tested successfully
    }
    done_.wait();
    std::lock_guard<std::mutex> lock(mutex_);
    consumed_ = true;
    return status_;
  }

  /// Non-blocking test (MPI_Test).
  bool test(MpiStatus* status_out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (consumed_) {
        if (status_out != nullptr) *status_out = status_;
        return true;
      }
      if (completed_) {
        // Consume the semaphore permit so a later wait() does not block.
        MADMPI_CHECK(done_.try_wait());
        consumed_ = true;
        if (status_out != nullptr) *status_out = status_;
        return true;
      }
    }
    // Spinning on MPI_Test is a legitimate MPI program, and on the fiber
    // engine the tested operation can only complete if the peer's fiber
    // gets to run: yield the shard before reporting "not yet".
    marcel::cooperative_yield();
    return false;
  }

  bool completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
  }

  /// Schedule-advancement hook: runs exactly once after the status is
  /// recorded, from the completing context, outside the request mutex (it
  /// may issue further operations). If the request already completed —
  /// eager sends complete inline — the hook runs immediately on the
  /// caller. Set at most one hook per request.
  void set_on_complete(std::function<void(const MpiStatus&)> fn) {
    MpiStatus status;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!completed_) {
        on_complete_ = std::move(fn);
        return;
      }
      status = status_;
    }
    fn(status);
  }

  /// Register the operation-specific cancellation attempt (set once, by
  /// the operation that created this request, before the request handle is
  /// returned to the user). The hook returns true when it managed to
  /// detach the operation — the detached path then completes the request
  /// with ErrorCode::kCancelled.
  void set_cancel(std::function<bool()> fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    cancel_fn_ = std::move(fn);
  }

  /// MPI_Cancel: best-effort and local. Returns false when the request
  /// already completed (the operation finishes normally; MPI permits
  /// this). The hook runs outside the lock — it may complete the request
  /// synchronously, and complete() takes the lock again.
  bool cancel() {
    std::function<bool()> fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (completed_ || !cancel_fn_) return false;
      fn = cancel_fn_;
    }
    return fn();
  }

 private:
  mutable std::mutex mutex_;
  marcel::Semaphore done_;
  MpiStatus status_;
  bool completed_ = false;
  bool consumed_ = false;
  std::function<bool()> cancel_fn_;
  std::function<void(const MpiStatus&)> on_complete_;
};

/// Value-semantic handle (MPI_Request).
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  MpiStatus wait() {
    MADMPI_CHECK_MSG(valid(), "wait on a null request");
    return state_->wait();
  }

  bool test(MpiStatus* status = nullptr) {
    MADMPI_CHECK_MSG(valid(), "test on a null request");
    return state_->test(status);
  }

  /// MPI_Cancel. Local, best-effort: true when the cancellation was
  /// initiated (the request will complete with ErrorCode::kCancelled);
  /// false when the operation already completed or cannot be cancelled.
  /// The caller still must wait()/test() the request either way.
  bool cancel() {
    MADMPI_CHECK_MSG(valid(), "cancel on a null request");
    return state_->cancel();
  }

  static void wait_all(std::span<Request> requests) {
    for (auto& request : requests) request.wait();
  }

  /// MPI_Waitany: block until one request completes; returns its index and
  /// fills `status`. Completed requests are identified by test(), so the
  /// returned request is consumed. Aborts on an all-null span.
  static std::size_t wait_any(std::span<Request> requests,
                              MpiStatus* status = nullptr);

  /// MPI_Testany: non-blocking variant; returns the index or npos.
  static std::size_t test_any(std::span<Request> requests,
                              MpiStatus* status = nullptr);

  /// MPI_Testall: true when every request has completed (all consumed).
  static bool test_all(std::span<Request> requests);

  /// MPI_Waitsome: block until at least one completes; returns the indices
  /// of every completed request.
  static std::vector<std::size_t> wait_some(std::span<Request> requests);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::shared_ptr<RequestState> state() { return state_; }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace madmpi::mpi
