// Session-setup auto-tuner for the collective engine (MADMPI_COLL_TUNE).
//
// At session start (before rank_main) every rank runs tune_collectives on
// the world communicator: each candidate algorithm is micro-probed at a
// small and a large payload, timed on the virtual clock, and the slowest
// rank's elapsed time (allreduce-max) is the candidate's score — identical
// on every rank, so every rank derives the same winner without trusting
// float reduction order. Rank 0's table is still broadcast as raw bytes
// (the struct is trivially copyable) so the installed table is rank-0
// authoritative by construction. The result lands in the runtime's
// decision table, which kAuto resolution consults; explicit MADMPI_COLL_*
// overrides still win (resolution precedence: explicit > table > static
// heuristic).
//
// Probes synchronise with a config-independent dissemination barrier over
// the *user* context (the tuner runs before rank_main, so the tag space is
// empty) — a config-dependent barrier() could mix two barrier algorithms
// across ranks mid-switch and deadlock.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/status.hpp"
#include "mpi/comm_shared.hpp"
#include "mpi/datatype.hpp"
#include "mpi/op.hpp"
#include "mpi/runtime.hpp"

namespace madmpi::mpi {

namespace {

constexpr std::size_t kSmallBytes = 256;
constexpr std::size_t kLargeBytes = 64 * 1024;
/// User-context tag reserved for the tuner's own sync (pre-rank_main, the
/// user tag space is otherwise untouched).
constexpr int kTunerSyncTag = 999983;
/// Virtual-clock costs are deterministic, but the *order* in which a
/// drain loop handles near-simultaneous frames from different peers
/// follows their real (host-scheduling) arrival, which serializes
/// recv-overhead charges differently run to run. Two defenses: probe each
/// candidate several times and keep the best score (reorder penalties only
/// ever add latency), and demand a decisive win before switching away from
/// the earlier-listed candidate, so sub-jitter differences resolve to the
/// same winner on every run.
constexpr int kProbeReps = 5;
constexpr double kDecisiveMargin = 0.70;  // challenger must be >30% faster

}  // namespace

void tune_collectives(Comm world) {
  MADMPI_CHECK_MSG(world.valid(), "tune_collectives needs a communicator");
  Runtime* runtime = world.shared_->runtime;

  CollDecisionTable table;
  table.valid = true;
  if (world.size() <= 1) {
    runtime->set_coll_decision_table(table);
    return;
  }

  const CollectiveConfig saved = world.collective_config();
  const CollTopo& topo = world.coll_topo();
  const int n = world.size();
  const int me = world.rank();

  // Dissemination barrier on the user context: independent of the
  // collective config being probed.
  auto sync = [&] {
    for (int mask = 1; mask < n; mask <<= 1) {
      const rank_t to = static_cast<rank_t>((me + mask) % n);
      const rank_t from = static_cast<rank_t>((me - mask + n) % n);
      world.sendrecv(nullptr, 0, Datatype::byte(), to, kTunerSyncTag,
                     nullptr, 0, Datatype::byte(), from, kTunerSyncTag);
    }
  };

  // Score one candidate: quiesce, switch every rank to the explicit
  // algorithm (identical writes, so late readers still see the candidate),
  // time the operation and take the slowest rank; best of kProbeReps
  // filters host-scheduling drain-order noise (see kDecisiveMargin).
  auto probe = [&](const CollectiveConfig& candidate,
                   const std::function<void()>& op) -> double {
    sync();
    world.set_collective_config(candidate);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kProbeReps; ++rep) {
      sync();
      const double start = world.wtime_us();
      op();
      double elapsed = world.wtime_us() - start;
      double slowest = 0.0;
      world.allreduce(&elapsed, &slowest, 1, Datatype::float64(), Op::max());
      best = std::min(best, slowest);
    }
    return best;
  };
  // MADMPI_COLL_TUNE_LOG=1: rank 0 prints every probe score (margin
  // debugging for new topologies).
  const bool log_scores = [] {
    const char* value = std::getenv("MADMPI_COLL_TUNE_LOG");
    return value != nullptr && value[0] == '1';
  }();
  auto log_score = [&](const char* collective, int algorithm,
                       std::size_t bytes, double us) {
    if (log_scores && me == 0) {
      std::fprintf(stderr, "[coll_tune] %s alg=%d bytes=%zu us=%.2f\n",
                   collective, algorithm, bytes, us);
    }
  };

  std::vector<std::byte> payload(kLargeBytes);
  std::vector<double> reduce_in(kLargeBytes / sizeof(double), 1.0);
  std::vector<double> reduce_out(reduce_in.size(), 0.0);

  auto bcast_op = [&](std::size_t bytes) {
    return [&, bytes] {
      world.bcast(payload.data(), static_cast<int>(bytes), Datatype::byte(),
                  0);
    };
  };
  auto allreduce_op = [&](std::size_t bytes) {
    const int count = static_cast<int>(bytes / sizeof(double));
    return [&, count] {
      world.allreduce(reduce_in.data(), reduce_out.data(), count,
                      Datatype::float64(), Op::sum());
    };
  };

  // Candidate sets. Hierarchical variants only make sense across islands
  // (they degrade to the flat algorithm otherwise — probing them would
  // just measure the flat twice); the offload tree additionally needs an
  // offload-capable homogeneous leader fabric and the config gate.
  std::vector<BcastAlgorithm> bcast_candidates{BcastAlgorithm::kBinomial};
  if (!topo.single_island()) {
    bcast_candidates.push_back(BcastAlgorithm::kHierarchical);
    if (topo.offload_capable && saved.offload) {
      bcast_candidates.push_back(BcastAlgorithm::kOffload);
    }
  }
  std::vector<AllreduceAlgorithm> allreduce_candidates{
      AllreduceAlgorithm::kReduceBcast, AllreduceAlgorithm::kRecursiveDoubling,
      AllreduceAlgorithm::kRing};
  if (!topo.single_island()) {
    allreduce_candidates.push_back(AllreduceAlgorithm::kHierarchical);
  }
  std::vector<BarrierAlgorithm> barrier_candidates{
      BarrierAlgorithm::kDissemination};
  if (!topo.single_island()) {
    barrier_candidates.push_back(BarrierAlgorithm::kHierarchical);
    if (topo.offload_capable && saved.offload) {
      barrier_candidates.push_back(BarrierAlgorithm::kOffload);
    }
  }

  auto pick_bcast = [&](std::size_t bytes) {
    BcastAlgorithm best = bcast_candidates.front();
    double best_us = std::numeric_limits<double>::infinity();
    for (BcastAlgorithm candidate : bcast_candidates) {
      CollectiveConfig cfg = saved;
      cfg.bcast = candidate;
      const double us = probe(cfg, bcast_op(bytes));
      log_score("bcast", static_cast<int>(candidate), bytes, us);
      if (us < kDecisiveMargin * best_us) {
        best_us = us;
        best = candidate;
      }
    }
    return best;
  };
  auto pick_allreduce = [&](std::size_t bytes) {
    AllreduceAlgorithm best = allreduce_candidates.front();
    double best_us = std::numeric_limits<double>::infinity();
    for (AllreduceAlgorithm candidate : allreduce_candidates) {
      CollectiveConfig cfg = saved;
      cfg.allreduce = candidate;
      const double us = probe(cfg, allreduce_op(bytes));
      log_score("allreduce", static_cast<int>(candidate), bytes, us);
      if (us < kDecisiveMargin * best_us) {
        best_us = us;
        best = candidate;
      }
    }
    return best;
  };

  table.bcast_small = pick_bcast(kSmallBytes);
  table.bcast_large = pick_bcast(kLargeBytes);
  table.allreduce_small = pick_allreduce(kSmallBytes);
  table.allreduce_large = pick_allreduce(kLargeBytes);

  {
    BarrierAlgorithm best = barrier_candidates.front();
    double best_us = std::numeric_limits<double>::infinity();
    for (BarrierAlgorithm candidate : barrier_candidates) {
      CollectiveConfig cfg = saved;
      cfg.barrier = candidate;
      const double us = probe(cfg, [&] { world.barrier(); });
      log_score("barrier", static_cast<int>(candidate), 0, us);
      if (us < kDecisiveMargin * best_us) {
        best_us = us;
        best = candidate;
      }
    }
    table.barrier = best;
  }

  // Restore the pre-tuner config before installing the table, then push
  // rank 0's verdict over the wire (every rank computed the same table,
  // but rank 0 is authoritative by construction).
  sync();
  world.set_collective_config(saved);
  static_assert(std::is_trivially_copyable_v<CollDecisionTable>,
                "the decision table is broadcast as raw bytes");
  world.bcast(&table, static_cast<int>(sizeof(table)), Datatype::byte(), 0);
  runtime->set_coll_decision_table(table);
  sync();
}

}  // namespace madmpi::mpi
