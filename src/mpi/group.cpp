#include "mpi/group.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace madmpi::mpi {

Group::Group(std::vector<rank_t> world_ranks)
    : members_(std::move(world_ranks)) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    MADMPI_CHECK_MSG(members_[i] >= 0, "negative rank in group");
    for (std::size_t j = i + 1; j < members_.size(); ++j) {
      MADMPI_CHECK_MSG(members_[i] != members_[j], "duplicate rank in group");
    }
  }
}

rank_t Group::world_rank(int index) const {
  MADMPI_CHECK(index >= 0 && index < size());
  return members_[static_cast<std::size_t>(index)];
}

int Group::rank_of(rank_t world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

Group Group::set_union(const Group& a, const Group& b) {
  std::vector<rank_t> out = a.members_;
  for (rank_t member : b.members_) {
    if (!a.contains(member)) out.push_back(member);
  }
  return Group(std::move(out));
}

Group Group::set_intersection(const Group& a, const Group& b) {
  std::vector<rank_t> out;
  for (rank_t member : a.members_) {
    if (b.contains(member)) out.push_back(member);
  }
  return Group(std::move(out));
}

Group Group::set_difference(const Group& a, const Group& b) {
  std::vector<rank_t> out;
  for (rank_t member : a.members_) {
    if (!b.contains(member)) out.push_back(member);
  }
  return Group(std::move(out));
}

Group Group::incl(std::span<const int> ranks) const {
  std::vector<rank_t> out;
  out.reserve(ranks.size());
  for (int position : ranks) {
    out.push_back(world_rank(position));
  }
  return Group(std::move(out));
}

Group Group::excl(std::span<const int> ranks) const {
  std::vector<rank_t> out;
  for (int i = 0; i < size(); ++i) {
    if (std::find(ranks.begin(), ranks.end(), i) == ranks.end()) {
      out.push_back(members_[static_cast<std::size_t>(i)]);
    }
  }
  return Group(std::move(out));
}

std::vector<int> Group::translate_ranks(const Group& a,
                                        std::span<const int> a_ranks,
                                        const Group& b) {
  std::vector<int> out;
  out.reserve(a_ranks.size());
  for (int position : a_ranks) {
    out.push_back(b.rank_of(a.world_rank(position)));
  }
  return out;
}

bool Group::similar(const Group& other) const {
  if (size() != other.size()) return false;
  for (rank_t member : members_) {
    if (!other.contains(member)) return false;
  }
  return true;
}

std::uint32_t Group::digest() const {
  // FNV-1a over the member list; stable across ranks by construction
  // (all callers of a collective pass an identical group).
  std::uint32_t hash = 2166136261u;
  for (rank_t member : members_) {
    auto word = static_cast<std::uint32_t>(member);
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (word >> shift) & 0xffu;
      hash *= 16777619u;
    }
  }
  return hash;
}

}  // namespace madmpi::mpi
