// Explicit packing into user-managed buffers (MPI_Pack / MPI_Unpack /
// MPI_Pack_size): lets applications build heterogeneous messages manually,
// the pre-derived-datatype idiom many 2001-era codes used.
#pragma once

#include "common/status.hpp"
#include "mpi/datatype.hpp"

namespace madmpi::mpi {

/// MPI_Pack_size: bytes `count` elements of `type` need in a pack buffer.
inline std::size_t pack_size(int count, const Datatype& type) {
  return type.size() * static_cast<std::size_t>(count);
}

/// MPI_Pack: serialize `count` elements of `type` from `in` into
/// `out[*position ...]`, advancing *position. Aborts when the buffer is
/// too small (MPI_ERR_TRUNCATE equivalent).
inline void pack(const void* in, int count, const Datatype& type,
                 void* out, std::size_t out_size, std::size_t* position) {
  const std::size_t needed = pack_size(count, type);
  MADMPI_CHECK_MSG(*position + needed <= out_size,
                   "pack buffer overflow");
  type.pack(in, count, static_cast<std::byte*>(out) + *position);
  *position += needed;
}

/// MPI_Unpack: the inverse.
inline void unpack(const void* in, std::size_t in_size,
                   std::size_t* position, void* out, int count,
                   const Datatype& type) {
  const std::size_t needed = pack_size(count, type);
  MADMPI_CHECK_MSG(*position + needed <= in_size,
                   "unpack past the end of the buffer");
  type.unpack(static_cast<const std::byte*>(in) + *position, count, out);
  *position += needed;
}

}  // namespace madmpi::mpi
