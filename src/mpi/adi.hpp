// The Abstract Device Interface (paper Section 2.2).
//
// The generic MPI layer talks to devices exclusively through this
// interface: a device moves packed bytes between two global ranks and
// delivers them into the destination rank's matching context. The choice
// between the eager and rendezvous transfer modes is made by the generic
// layer from the device's single switch-point value — deliberately a single
// integer, mirroring the MPID_Device limitation the paper works around in
// §4.2.2 (one threshold per device, even when the device multiplexes
// several networks).
#pragma once

#include <memory>

#include "mpi/matching.hpp"
#include "mpi/request.hpp"
#include "mpi/rma.hpp"
#include "mpi/types.hpp"

namespace madmpi::mpi {

class Device {
 public:
  virtual ~Device() = default;

  virtual const char* name() const = 0;

  /// The eager->rendezvous switch point in bytes (messages strictly larger
  /// use the rendezvous mode).
  virtual std::size_t rendezvous_threshold() const = 0;

  /// Transfer `packed` from `src` to `dst` (global ranks). Blocking:
  /// returns once the message is locally complete — immediately after
  /// injection for eager, after the data transfer for rendezvous. The
  /// device is responsible for all virtual-time accounting on both sides
  /// and for delivering into the destination RankContext. Non-ok when the
  /// message could not be delivered (all routes to the destination dead);
  /// the generic layer maps it onto the MPI error of the operation.
  virtual Status send(rank_t src, rank_t dst, const Envelope& env,
                      byte_span packed, TransferMode mode) = 0;

  /// True when this device can carry src -> dst.
  virtual bool reaches(rank_t src, rank_t dst) const = 0;

  /// Flow-control admission for an eager transfer of `bytes` from `src`
  /// to `dst`. Devices with sender-side credit windows deduct a credit
  /// here; a false return tells the generic layer to demote the transfer
  /// to rendezvous (which consumes no receive-side buffer). `may_block`
  /// is true on blocking sends, where the device may instead wait (in
  /// virtual time) for credits to return. Default: no flow control.
  virtual bool admit_eager(rank_t src, rank_t dst, std::uint64_t bytes,
                           bool may_block) {
    (void)src;
    (void)dst;
    (void)bytes;
    (void)may_block;
    return true;
  }

  /// Nonblocking rendezvous send. The device injects the rendezvous
  /// REQUEST on the calling thread — preserving the per-source frame
  /// order the matching layer's FIFO rule rests on (a detached sender
  /// thread could otherwise inject its request after a later eager frame
  /// from the same rank, and the receiver would match them in arrival
  /// order) — then completes `state` from its own progress machinery once
  /// the data push finishes. `packed` must stay valid until `state`
  /// completes; `owned`, when non-empty, is the staging buffer backing
  /// `packed` and transfers ownership to the device. Returns false when
  /// the device has no asynchronous rendezvous — the generic layer then
  /// falls back to parking a blocking send on a temporary thread.
  virtual bool isend_rendezvous(rank_t src, rank_t dst, const Envelope& env,
                                byte_span packed,
                                std::vector<std::byte> owned,
                                std::shared_ptr<RequestState> state) {
    (void)src;
    (void)dst;
    (void)env;
    (void)packed;
    (void)owned;
    (void)state;
    return false;
  }

  /// Best-effort cancellation of an in-flight send from `src` to `dst`
  /// whose envelope matches `env` (MPI_Cancel on a send request). True
  /// when the device detached the transfer — it then completes the
  /// sender's wait with ErrorCode::kCancelled. The default cannot cancel:
  /// devices that complete sends inline have nothing left in flight.
  virtual bool try_cancel_send(rank_t src, rank_t dst, const Envelope& env) {
    (void)src;
    (void)dst;
    (void)env;
    return false;
  }

  /// One-sided extension (MPI-3 RMA; no MPID equivalent — the paper's ADI
  /// predates it). True when the device can execute `rma()`.
  virtual bool supports_rma() const { return false; }

  /// Issue one one-sided operation from `src` towards the window named in
  /// `desc` on `dst`. `payload` carries the origin data for puts and
  /// accumulates; `get_dest` is where a get's reply lands. Data-bearing
  /// ops are fire-and-forget (epoch completion travels through the
  /// kSync/kUnlock ledger); ops that need a reply (get, lock, sync,
  /// unlock) complete `completion` when the reply arrives. The default
  /// device has no one-sided support.
  virtual Status rma(rank_t src, rank_t dst, const RmaDesc& desc,
                     byte_span payload, void* get_dest,
                     std::shared_ptr<RequestState> completion) {
    (void)src;
    (void)dst;
    (void)desc;
    (void)payload;
    (void)get_dest;
    (void)completion;
    return Status(ErrorCode::kProtocol,
                  "device has no one-sided (RMA) support");
  }

  /// Transfer mode for a message of `bytes` under this device's protocol
  /// selection (MPI_Ssend forces the rendezvous handshake so completion
  /// implies a matching receive).
  TransferMode select_mode(std::uint64_t bytes, bool synchronous) const {
    if (synchronous) return TransferMode::kRendezvous;
    return bytes > rendezvous_threshold() ? TransferMode::kRendezvous
                                          : TransferMode::kEager;
  }
};

}  // namespace madmpi::mpi
