// MPI-level vocabulary: wildcards, message envelopes, status objects.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"

namespace madmpi::mpi {

/// Wildcards (values chosen to never collide with valid ranks/tags).
inline constexpr rank_t kAnySource = -2;
inline constexpr int kAnyTag = -1;

/// Highest tag value the implementation guarantees (MPI_TAG_UB).
inline constexpr int kTagUpperBound = (1 << 22) - 1;

/// The message envelope: what matching operates on. `src`/`dst` are ranks
/// within the communicator identified by `context`.
struct Envelope {
  int context = 0;
  rank_t src = kInvalidRank;
  rank_t dst = kInvalidRank;
  int tag = 0;
  std::uint64_t bytes = 0;     // payload size after datatype packing
  bool synchronous = false;    // MPI_Ssend: completion needs the rendezvous
  /// Wire byte order: true when the sender transmits big-endian data. The
  /// receiver converts when its own order differs (receiver-makes-right).
  bool sender_big_endian = false;
};

/// MPI_Get_count semantics, shared by MpiStatus::count() and the C facade
/// so both layers agree on the edge cases: an empty message always counts
/// zero elements — even of a zero-size (empty derived) datatype — while a
/// non-empty message that does not divide into whole elements is
/// MPI_UNDEFINED, returned here as -1.
constexpr std::int64_t element_count(std::uint64_t bytes,
                                     std::size_t type_size) {
  if (bytes == 0) return 0;
  if (type_size == 0 || bytes % type_size != 0) return -1;
  return static_cast<std::int64_t>(bytes / type_size);
}

/// Result of a completed receive (MPI_Status equivalent).
struct MpiStatus {
  rank_t source = kInvalidRank;
  int tag = kAnyTag;
  std::uint64_t bytes = 0;

  /// Per-operation error (MPI_Status.MPI_ERROR equivalent). kTruncated
  /// when the message was longer than the posted buffer and only a prefix
  /// was delivered; `bytes` then counts the delivered prefix.
  ErrorCode error = ErrorCode::kOk;

  /// MPI_Get_count: number of `type_size`-byte elements, or -1
  /// (MPI_UNDEFINED) when the byte count does not divide into whole
  /// elements (element_count holds the shared edge-case rules).
  std::int64_t count(std::size_t type_size) const {
    return element_count(bytes, type_size);
  }
};

/// Transfer protocol selected by the ADI for one message (paper §2.2.1:
/// short/eager/rendez-vous; ch_mad merges short into eager, §4.2.1).
enum class TransferMode {
  kEager,       // data travels immediately, bounce copy on the receiver
  kRendezvous,  // request/ack handshake, zero-copy data
};

}  // namespace madmpi::mpi
