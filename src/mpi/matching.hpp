// Per-rank message matching: the posted-receive and unexpected-message
// queues of the generic ADI ("request queues management", paper Figure 1).
//
// Devices deliver inbound messages here; receives are posted here. Matching
// is on (context, source, tag) with MPI wildcard semantics, FIFO within a
// (context, source) pair — devices deliver in order per source, which
// preserves the MPI non-overtaking rule.
//
// Layout: both queues are sharded into per-(context, source) hash buckets,
// so the common case — a specific-source receive meeting a delivery —
// touches one bucket and one bucket lock, independent of how many other
// peers have traffic in flight. Wildcard (ANY_SOURCE) receives live in a
// separate rank-wide list; every queued entry carries a sequence number
// from one per-rank counter, and a lookup that has candidates in both
// structures takes the lower sequence number — exactly the entry the old
// flat arrival-order scan would have picked.
//
// Lock hierarchy (DESIGN.md §13): the rank-wide mutex_ is always taken
// before any bucket mutex, never after. Bucket-only paths: specific-source
// post/delivery/iprobe when no wildcard receive is queued. Rank-lock
// paths: wildcard posts, probe waits, cancellation sweeps, min_ft_deadline
// and store-budget administration. Deliveries detect queued wildcards via
// an atomic count read under the bucket lock (the wildcard poster
// increments it before touching any bucket, so the mutex ordering makes a
// lost match impossible) and upgrade to the rank lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/slab_pool.hpp"
#include "mpi/datatype.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/node.hpp"

namespace madmpi::mpi {

struct WinTarget;  // mpi/rma.hpp

/// A posted receive waiting for its message.
struct PostedRecv {
  int context = 0;
  rank_t source = kAnySource;
  int tag = kAnyTag;

  void* buffer = nullptr;          // user buffer (element layout)
  Datatype type = Datatype::byte();
  int count = 0;                   // max elements
  std::size_t capacity_bytes = 0;  // type.size() * count

  std::shared_ptr<RequestState> request;

  /// Global rank of the only sender this receive can match, or kInvalidRank
  /// for wildcard receives. The progress watchdog uses it to decide whether
  /// a receive can still complete (all routes to the peer dead => cancel).
  rank_t source_global = kInvalidRank;
  /// Virtual time at which the receive was posted (poster's lane). The
  /// watchdog stamps cancellations at posted_at + horizon so the error is
  /// observed a deterministic horizon after the post, independent of when
  /// the wall-clock watchdog thread happened to fire.
  usec_t posted_at = 0.0;

  /// FT collectives: absolute virtual-time deadline. 0 = none. A receive
  /// carrying a deadline is cancelled by the watchdog once the whole
  /// session has made no virtual progress for a long stretch (the
  /// agreement protocol's safety valve against fault schedules the
  /// reachability oracle cannot prove dead); the cancellation is stamped
  /// at the deadline, keeping the error deterministic in virtual time.
  usec_t ft_deadline_us = 0.0;

  /// Post-order sequence number, assigned when the receive is queued.
  /// Lookups with candidates in both a bucket and the wildcard list pick
  /// the lower seq — the receive the flat arrival-order scan would match.
  std::uint64_t seq = 0;
};

/// Called when a rendezvous request finds (or is found by) its posted
/// receive: the device must send the OK_TO_SEND acknowledgement carrying
/// a handle onto `posted` (paper §4.2.2 step 2).
using RendezvousMatch = std::function<void(const Envelope&, PostedRecv)>;

/// Called when an eager message is consumed (copied into its user buffer).
/// Devices with credit-based flow control hook this to return credits to
/// the sender only once the receiver has actually drained the message.
using EagerConsumed = std::function<void()>;

/// An unexpected message as the queues store it. Public only so a
/// MatchedMessage (MPI_Mprobe handle) can own one after removal; devices
/// never construct these directly.
struct UnexpectedMessage {
  Envelope env;
  ChunkRef payload;  // eager only: refcounted view of the stored bytes —
                     // either the delivering frame's own slab (zero-copy
                     // handoff) or a pool chunk staged on arrival
  bool rendezvous = false;
  RendezvousMatch on_match;        // rendezvous only
  EagerConsumed on_consumed;       // eager only; may be empty
  std::size_t charge = 0;          // bytes held against the budget
  /// Virtual time at which the message became available (the delivering
  /// thread's lane). A later-posted receive synchronizes to this before
  /// completing — the causal edge from delivery to matching.
  usec_t available_at = 0.0;
  /// Arrival-order sequence number (same counter as PostedRecv::seq).
  std::uint64_t seq = 0;
};

/// The handle MPI_Mprobe/MPI_Improbe return: owns the unexpected message
/// that was removed from the queues, so the follow-up mrecv() cannot race
/// any other receive for it. Dropping a valid handle without mrecv()
/// leaks the message (as the MPI standard's matched-probe semantics
/// require the message to be received).
class MatchedMessage {
 public:
  MatchedMessage() = default;
  MatchedMessage(MatchedMessage&& other) noexcept
      : message_(std::move(other.message_)), valid_(other.valid_) {
    other.valid_ = false;  // moved-from handles read as already received
  }
  MatchedMessage& operator=(MatchedMessage&& other) noexcept {
    message_ = std::move(other.message_);
    valid_ = other.valid_;
    other.valid_ = false;
    return *this;
  }
  MatchedMessage(const MatchedMessage&) = delete;
  MatchedMessage& operator=(const MatchedMessage&) = delete;

  bool valid() const { return valid_; }
  const Envelope& envelope() const { return message_.env; }

 private:
  friend class RankContext;
  UnexpectedMessage message_;
  bool valid_ = false;
};

/// One rank's matching engine.
class RankContext {
 public:
  RankContext(rank_t global_rank, sim::Node& node);

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  rank_t global_rank() const { return global_rank_; }
  sim::Node& node() { return node_; }

  /// Post a receive. If an unexpected message already matches: an eager one
  /// is delivered on the spot (charging the bounce copy out of the
  /// unexpected store), a rendezvous one triggers its stored match
  /// callback. Otherwise the receive is queued.
  void post_recv(PostedRecv posted);

  /// Device entry: an eager message has arrived with its packed payload.
  /// If a posted receive matches, the payload is unpacked into the user
  /// buffer; otherwise it is copied into the unexpected queue. Either way
  /// one host copy is charged — the paper's "intermediary copy on the
  /// receiving side" that defines the eager mode (§4.1). The caller must
  /// have synchronized the node clock with the arrival already.
  /// `on_consumed` (optional) runs outside the queue lock when the payload
  /// is being drained into a user buffer — immediately on a match, or when
  /// a later receive drains it from the unexpected store. It runs *before*
  /// the receive request completes: credit returns hooked here must be in
  /// flight (and accounted for) before the application can observe the
  /// receive and initiate shutdown, or the returning packet races the
  /// termination drain and its credits evaporate.
  /// `backing` (optional) is a chunk reference covering `payload`: when
  /// given and the message goes unexpected, the store keeps the reference
  /// instead of copying the bytes — the zero-copy handoff from the device's
  /// receive path. Without it the store stages through the slab pool.
  void deliver_eager(const Envelope& env, byte_span payload,
                     EagerConsumed on_consumed = {}, ChunkRef backing = {});

  /// Device entry: a rendezvous request has arrived. If a posted receive
  /// matches, `on_match` runs immediately (on the delivering thread);
  /// otherwise it is stored and runs when a matching receive is posted.
  void deliver_rendezvous(const Envelope& env, RendezvousMatch on_match);

  /// MPI_Iprobe: matching unexpected envelope, if any.
  bool iprobe(int context, rank_t source, int tag, MpiStatus* status);

  /// MPI_Probe: block until a matching message is available.
  /// `source_global` is the probed peer's global rank (kInvalidRank for
  /// wildcard probes): when a watchdog is installed and the peer becomes
  /// unreachable, the probe returns with `status->error` set instead of
  /// waiting forever.
  void probe(int context, rank_t source, int tag, rank_t source_global,
             MpiStatus* status);

  // ---- Matched probe (MPI_Mprobe / MPI_Improbe / MPI_Mrecv) ----------

  /// MPI_Improbe: remove the earliest matching unexpected message and
  /// return it in `message`. False (and `message` left invalid) when no
  /// unexpected message matches right now. Unlike iprobe, a successful
  /// improbe *consumes* the queue entry: only mrecv() can complete it,
  /// which closes the probe-then-recv race.
  bool improbe(int context, rank_t source, int tag, MatchedMessage* message,
               MpiStatus* status);

  /// MPI_Mprobe: block until a matching message is available, then remove
  /// and return it. Watchdog-aware exactly like probe(): an unreachable
  /// specific peer sets `status->error` and leaves `message` invalid.
  void mprobe(int context, rank_t source, int tag, rank_t source_global,
              MatchedMessage* message, MpiStatus* status);

  /// MPI_Mrecv: deliver a matched message into `posted` (which carries the
  /// buffer, datatype and request). Eager payloads are unpacked here with
  /// the same credit-before-completion ordering as post_recv; a matched
  /// rendezvous request fires its stored acknowledgement action.
  void mrecv(MatchedMessage message, PostedRecv posted);

  // ---- Bounded unexpected store -------------------------------------
  //
  // The store budget caps the *bytes* the unexpected queue may buffer.
  // Senders ask admit_eager() before an eager transfer; refusal means
  // "retry as rendezvous" (which buffers nothing until the receive
  // posts). Each entry is charged its payload plus a fixed overhead so a
  // storm of zero-byte messages is bounded too.

  static constexpr std::size_t kUnexpectedEntryOverhead = 64;

  /// Set the byte budget for the unexpected store. 0 means unlimited
  /// (the default, so directly-constructed contexts in tests keep the
  /// pre-budget behaviour).
  void set_unexpected_budget(std::size_t bytes);
  std::size_t unexpected_budget() const;

  /// Reserve room for an inbound eager message of `bytes` payload.
  /// Returns false (and counts a refusal) if the store cannot take it.
  /// Reservations are released by the matching deliver_eager().
  bool admit_eager(std::size_t bytes);

  /// Drop a reservation whose eager send failed before delivery.
  void release_eager_admission(std::size_t bytes);

  /// Counters for tests/diagnostics — O(1), maintained at queue
  /// transitions (they feed hot test oracles and the watchdog
  /// fingerprint; recomputing them under a lock was a scan per call).
  std::size_t posted_count() const {
    return posted_count_.load(std::memory_order_relaxed);
  }
  std::size_t unexpected_count() const {
    return unexpected_count_.load(std::memory_order_relaxed);
  }
  std::size_t unexpected_bytes() const {
    return stored_.load(std::memory_order_relaxed);
  }
  std::size_t unexpected_bytes_high_water() const {
    return stored_high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t eager_refused() const {
    return eager_refused_.load(std::memory_order_relaxed);
  }

  // ---- Progress watchdog hooks --------------------------------------

  /// Install the watchdog's failure detector: `unreachable(peer)` answers
  /// whether `peer` (global rank) can still reach this rank. `horizon` is
  /// the virtual-time grace period granted to an operation before a dead
  /// peer cancels it.
  void set_watchdog(usec_t horizon,
                    std::function<bool(rank_t)> unreachable);

  /// Cancel every posted receive whose (non-wildcard) peer the watchdog's
  /// failure detector reports unreachable. Each canceled request completes
  /// with `code`, stamped at posted_at + horizon. Returns how many were
  /// canceled.
  std::size_t cancel_unreachable(ErrorCode code);

  /// Earliest ft_deadline_us among posted receives, or 0 when none carry
  /// one. The watchdog uses the global minimum across all ranks to pick
  /// the stall-cancel cohort.
  usec_t min_ft_deadline() const;

  /// Cancel every posted receive carrying an ft_deadline_us at or below
  /// `before_deadline_us`. Called by the watchdog only after a sustained
  /// global stall (Session::kFtStallSweeps) — the FT agreement safety
  /// valve. The window restricts each stall round to the globally oldest
  /// cohort of deadline receives: cancelling only the operation that is
  /// actually stuck lets a lagging rank catch up without poisoning newer
  /// collectives other ranks are blocked in behind it. Each cancellation
  /// completes with `code`, stamped at the deadline.
  std::size_t cancel_expired(ErrorCode code, usec_t before_deadline_us);

  /// Cancel every posted receive on `context` with `code` (communicator
  /// revocation): the revoking rank interrupts peers blocked in
  /// operations on the revoked communicator. Stamped at posted_at — the
  /// revocation is an external event, not a timeout.
  std::size_t cancel_context(int context, ErrorCode code);

  /// Wake any blocked probe loops so they re-evaluate reachability.
  void notify_waiters();

  /// MPI_Cancel on a receive: remove the posted receive owned by
  /// `request` and complete it with ErrorCode::kCancelled. False when no
  /// such receive is queued (it already matched — cancellation lost the
  /// race and the receive completes normally).
  bool cancel_posted(const RequestState* request);

  // --- One-sided windows (RMA) ---------------------------------------
  // The target-side state of every window this rank currently exposes,
  // keyed by the collectively-derived window id. Registration happens on
  // the rank's own thread (Win::create/free); lookup happens on the
  // device polling thread resolving incoming RMA packets — off the
  // matcher locks entirely, on a reader/writer lock of their own.

  void register_window(std::uint64_t win_id, WinTarget* target);
  void unregister_window(std::uint64_t win_id);
  WinTarget* find_window(std::uint64_t win_id);

 private:
  /// Both queues for one (context, source) pair, in arrival/post order —
  /// each deque is seq-sorted because entries are appended under the
  /// bucket lock with the seq assigned inside the critical section.
  struct KeyQueues {
    std::deque<PostedRecv> posted;
    std::deque<UnexpectedMessage> unexpected;
  };

  struct Bucket {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, KeyQueues> keys;
  };

  /// A wildcard-source candidate found during a bucket sweep: enough to
  /// re-find the entry after dropping the bucket lock (iterators don't
  /// survive concurrent appends; the entry itself does — only the rank's
  /// own thread removes unexpected entries).
  struct UnexpectedHit {
    Bucket* bucket = nullptr;
    std::uint64_t key = 0;
    Envelope env;
    usec_t available_at = 0.0;
    std::uint64_t seq = 0;
    bool found = false;
  };

  static bool matches(const PostedRecv& posted, const Envelope& env) {
    return posted.context == env.context &&
           (posted.source == kAnySource || posted.source == env.src) &&
           (posted.tag == kAnyTag || posted.tag == env.tag);
  }

  static std::uint64_t key_of(int context, rank_t src) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(context))
            << 32) ^
           static_cast<std::uint32_t>(src);
  }

  Bucket& bucket_of(std::uint64_t key);

  /// Unpack `payload` into the posted buffer and complete its request,
  /// converting byte order when the sender's wire format differs from
  /// this node's (the ADI's heterogeneity management).
  void finish_recv(const PostedRecv& posted, const Envelope& env,
                   byte_span payload);

  /// Remove and return the earliest-posted receive matching `env`.
  /// On a miss, returns false with `bucket_lock` (and `rank_lock`, when
  /// wildcards forced the slow path) still held and `queues` pointing at
  /// the envelope's KeyQueues — the caller appends its unexpected entry
  /// inside the same critical section, so a concurrent post cannot slip
  /// between the miss and the append.
  bool take_matching_posted(const Envelope& env,
                            std::unique_lock<std::mutex>& rank_lock,
                            std::unique_lock<std::mutex>& bucket_lock,
                            KeyQueues** queues, PostedRecv* out);

  /// Lowest-seq unexpected entry matching `pattern`, without removing it.
  /// Wildcard-source patterns sweep every bucket and REQUIRE mutex_ held
  /// by the caller (so no wildcard post races the sweep).
  UnexpectedHit peek_unexpected(const PostedRecv& pattern);

  /// Remove the lowest-seq matching unexpected entry. Same locking
  /// contract as peek_unexpected.
  bool take_unexpected(const PostedRecv& pattern, UnexpectedMessage* out);

  /// Deliver a drained unexpected entry into `posted` (shared tail of
  /// post_recv and mrecv): causal clock edge, copy charge, credits
  /// before completion.
  void consume_unexpected(UnexpectedMessage message, PostedRecv posted);

  /// Post-append wakeup: only when a probe loop is actually waiting
  /// (common deliveries skip the rank lock and the notify entirely).
  void wake_probes_after_append();

  rank_t global_rank_;
  sim::Node& node_;

  /// Rank-wide lock: wildcard posted list, probe waits, cancellation
  /// sweeps, watchdog installation. Always acquired BEFORE bucket locks.
  mutable std::mutex mutex_;
  std::condition_variable unexpected_arrived_;

  std::vector<Bucket> buckets_;  // size fixed at construction, power of two
  std::size_t bucket_mask_ = 0;

  /// Wildcard-source posted receives, in post order (guarded by mutex_).
  std::deque<PostedRecv> wildcard_posted_;
  /// wildcard_posted_.size(), readable without mutex_. Incremented BEFORE
  /// the wildcard post scans any bucket; deliveries read it under their
  /// bucket lock — the bucket mutex's happens-before edge guarantees a
  /// delivery either sees the queued wildcard or the wildcard's sweep sees
  /// the delivered message (DESIGN.md §13).
  std::atomic<std::size_t> wildcard_count_{0};

  /// Threads blocked in probe()/mprobe(). Deliveries only take the rank
  /// lock + notify when this is nonzero; registered under mutex_ before
  /// the waiter's first scan, so the same bucket-lock edge that makes
  /// wildcard posts safe makes the wakeup safe.
  std::atomic<std::size_t> probe_waiters_{0};

  /// One counter feeds both posted and arrival sequence numbers; values
  /// are only ever compared within one kind.
  std::atomic<std::uint64_t> seq_{0};

  // O(1) mirrors of the queue sizes.
  std::atomic<std::size_t> posted_count_{0};
  std::atomic<std::size_t> unexpected_count_{0};

  // Store accounting, off the rank lock: stored_ counts bytes actually
  // buffered in unexpected queues; reserved_ counts admitted-but-not-yet-
  // delivered eager transfers. Both are charged payload + overhead. The
  // unexpected path adds to stored_ BEFORE releasing reserved_, so a
  // racing admit_eager only ever over-counts — the budget stays a bound.
  std::atomic<std::size_t> budget_{0};  // 0 = unlimited
  std::atomic<std::size_t> stored_{0};
  std::atomic<std::size_t> reserved_{0};
  std::atomic<std::size_t> stored_high_water_{0};
  std::atomic<std::uint64_t> eager_refused_{0};

  // Watchdog (set once at session start, before ranks run; mutex_).
  usec_t watchdog_horizon_ = 0.0;
  std::function<bool(rank_t)> peer_unreachable_;

  // One-sided windows exposed by this rank. Own reader/writer lock: the
  // lookups run on device polling threads and must not contend with the
  // matcher's locks.
  mutable std::shared_mutex win_mutex_;
  std::map<std::uint64_t, WinTarget*> windows_;
};

}  // namespace madmpi::mpi
