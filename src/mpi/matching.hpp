// Per-rank message matching: the posted-receive and unexpected-message
// queues of the generic ADI ("request queues management", paper Figure 1).
//
// Devices deliver inbound messages here; receives are posted here. Matching
// is on (context, source, tag) with MPI wildcard semantics, FIFO within a
// (context, source) pair — devices deliver in order per source, and both
// queues are scanned in arrival order, which preserves the MPI
// non-overtaking rule.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/node.hpp"

namespace madmpi::mpi {

/// A posted receive waiting for its message.
struct PostedRecv {
  int context = 0;
  rank_t source = kAnySource;
  int tag = kAnyTag;

  void* buffer = nullptr;          // user buffer (element layout)
  Datatype type = Datatype::byte();
  int count = 0;                   // max elements
  std::size_t capacity_bytes = 0;  // type.size() * count

  std::shared_ptr<RequestState> request;
};

/// Called when a rendezvous request finds (or is found by) its posted
/// receive: the device must send the OK_TO_SEND acknowledgement carrying
/// a handle onto `posted` (paper §4.2.2 step 2).
using RendezvousMatch = std::function<void(const Envelope&, PostedRecv)>;

/// One rank's matching engine.
class RankContext {
 public:
  RankContext(rank_t global_rank, sim::Node& node)
      : global_rank_(global_rank), node_(node) {}

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  rank_t global_rank() const { return global_rank_; }
  sim::Node& node() { return node_; }

  /// Post a receive. If an unexpected message already matches: an eager one
  /// is delivered on the spot (charging the bounce copy out of the
  /// unexpected store), a rendezvous one triggers its stored match
  /// callback. Otherwise the receive is queued.
  void post_recv(PostedRecv posted);

  /// Device entry: an eager message has arrived with its packed payload.
  /// If a posted receive matches, the payload is unpacked into the user
  /// buffer; otherwise it is copied into the unexpected queue. Either way
  /// one host copy is charged — the paper's "intermediary copy on the
  /// receiving side" that defines the eager mode (§4.1). The caller must
  /// have synchronized the node clock with the arrival already.
  void deliver_eager(const Envelope& env, byte_span payload);

  /// Device entry: a rendezvous request has arrived. If a posted receive
  /// matches, `on_match` runs immediately (on the delivering thread);
  /// otherwise it is stored and runs when a matching receive is posted.
  void deliver_rendezvous(const Envelope& env, RendezvousMatch on_match);

  /// MPI_Iprobe: matching unexpected envelope, if any.
  bool iprobe(int context, rank_t source, int tag, MpiStatus* status);

  /// MPI_Probe: block until a matching message is available.
  void probe(int context, rank_t source, int tag, MpiStatus* status);

  /// Counters for tests/diagnostics.
  std::size_t posted_count() const;
  std::size_t unexpected_count() const;

 private:
  struct Unexpected {
    Envelope env;
    std::vector<std::byte> payload;  // eager only
    bool rendezvous = false;
    RendezvousMatch on_match;        // rendezvous only
    /// Virtual time at which the message became available (the delivering
    /// thread's lane). A later-posted receive synchronizes to this before
    /// completing — the causal edge from delivery to matching.
    usec_t available_at = 0.0;
  };

  static bool matches(const PostedRecv& posted, const Envelope& env) {
    return posted.context == env.context &&
           (posted.source == kAnySource || posted.source == env.src) &&
           (posted.tag == kAnyTag || posted.tag == env.tag);
  }

  /// Unpack `payload` into the posted buffer and complete its request,
  /// converting byte order when the sender's wire format differs from
  /// this node's (the ADI's heterogeneity management).
  void finish_recv(const PostedRecv& posted, const Envelope& env,
                   byte_span payload);

  rank_t global_rank_;
  sim::Node& node_;
  mutable std::mutex mutex_;
  std::condition_variable unexpected_arrived_;
  std::deque<PostedRecv> posted_;
  std::deque<Unexpected> unexpected_;
};

}  // namespace madmpi::mpi
