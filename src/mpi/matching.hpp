// Per-rank message matching: the posted-receive and unexpected-message
// queues of the generic ADI ("request queues management", paper Figure 1).
//
// Devices deliver inbound messages here; receives are posted here. Matching
// is on (context, source, tag) with MPI wildcard semantics, FIFO within a
// (context, source) pair — devices deliver in order per source, and both
// queues are scanned in arrival order, which preserves the MPI
// non-overtaking rule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/slab_pool.hpp"
#include "mpi/datatype.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/node.hpp"

namespace madmpi::mpi {

struct WinTarget;  // mpi/rma.hpp

/// A posted receive waiting for its message.
struct PostedRecv {
  int context = 0;
  rank_t source = kAnySource;
  int tag = kAnyTag;

  void* buffer = nullptr;          // user buffer (element layout)
  Datatype type = Datatype::byte();
  int count = 0;                   // max elements
  std::size_t capacity_bytes = 0;  // type.size() * count

  std::shared_ptr<RequestState> request;

  /// Global rank of the only sender this receive can match, or kInvalidRank
  /// for wildcard receives. The progress watchdog uses it to decide whether
  /// a receive can still complete (all routes to the peer dead => cancel).
  rank_t source_global = kInvalidRank;
  /// Virtual time at which the receive was posted (poster's lane). The
  /// watchdog stamps cancellations at posted_at + horizon so the error is
  /// observed a deterministic horizon after the post, independent of when
  /// the wall-clock watchdog thread happened to fire.
  usec_t posted_at = 0.0;

  /// FT collectives: absolute virtual-time deadline. 0 = none. A receive
  /// carrying a deadline is cancelled by the watchdog once the whole
  /// session has made no virtual progress for a long stretch (the
  /// agreement protocol's safety valve against fault schedules the
  /// reachability oracle cannot prove dead); the cancellation is stamped
  /// at the deadline, keeping the error deterministic in virtual time.
  usec_t ft_deadline_us = 0.0;
};

/// Called when a rendezvous request finds (or is found by) its posted
/// receive: the device must send the OK_TO_SEND acknowledgement carrying
/// a handle onto `posted` (paper §4.2.2 step 2).
using RendezvousMatch = std::function<void(const Envelope&, PostedRecv)>;

/// Called when an eager message is consumed (copied into its user buffer).
/// Devices with credit-based flow control hook this to return credits to
/// the sender only once the receiver has actually drained the message.
using EagerConsumed = std::function<void()>;

/// One rank's matching engine.
class RankContext {
 public:
  RankContext(rank_t global_rank, sim::Node& node)
      : global_rank_(global_rank), node_(node) {}

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  rank_t global_rank() const { return global_rank_; }
  sim::Node& node() { return node_; }

  /// Post a receive. If an unexpected message already matches: an eager one
  /// is delivered on the spot (charging the bounce copy out of the
  /// unexpected store), a rendezvous one triggers its stored match
  /// callback. Otherwise the receive is queued.
  void post_recv(PostedRecv posted);

  /// Device entry: an eager message has arrived with its packed payload.
  /// If a posted receive matches, the payload is unpacked into the user
  /// buffer; otherwise it is copied into the unexpected queue. Either way
  /// one host copy is charged — the paper's "intermediary copy on the
  /// receiving side" that defines the eager mode (§4.1). The caller must
  /// have synchronized the node clock with the arrival already.
  /// `on_consumed` (optional) runs outside the queue lock when the payload
  /// is being drained into a user buffer — immediately on a match, or when
  /// a later receive drains it from the unexpected store. It runs *before*
  /// the receive request completes: credit returns hooked here must be in
  /// flight (and accounted for) before the application can observe the
  /// receive and initiate shutdown, or the returning packet races the
  /// termination drain and its credits evaporate.
  /// `backing` (optional) is a chunk reference covering `payload`: when
  /// given and the message goes unexpected, the store keeps the reference
  /// instead of copying the bytes — the zero-copy handoff from the device's
  /// receive path. Without it the store stages through the slab pool.
  void deliver_eager(const Envelope& env, byte_span payload,
                     EagerConsumed on_consumed = {}, ChunkRef backing = {});

  /// Device entry: a rendezvous request has arrived. If a posted receive
  /// matches, `on_match` runs immediately (on the delivering thread);
  /// otherwise it is stored and runs when a matching receive is posted.
  void deliver_rendezvous(const Envelope& env, RendezvousMatch on_match);

  /// MPI_Iprobe: matching unexpected envelope, if any.
  bool iprobe(int context, rank_t source, int tag, MpiStatus* status);

  /// MPI_Probe: block until a matching message is available.
  /// `source_global` is the probed peer's global rank (kInvalidRank for
  /// wildcard probes): when a watchdog is installed and the peer becomes
  /// unreachable, the probe returns with `status->error` set instead of
  /// waiting forever.
  void probe(int context, rank_t source, int tag, rank_t source_global,
             MpiStatus* status);

  // ---- Bounded unexpected store -------------------------------------
  //
  // The store budget caps the *bytes* the unexpected queue may buffer.
  // Senders ask admit_eager() before an eager transfer; refusal means
  // "retry as rendezvous" (which buffers nothing until the receive
  // posts). Each entry is charged its payload plus a fixed overhead so a
  // storm of zero-byte messages is bounded too.

  static constexpr std::size_t kUnexpectedEntryOverhead = 64;

  /// Set the byte budget for the unexpected store. 0 means unlimited
  /// (the default, so directly-constructed contexts in tests keep the
  /// pre-budget behaviour).
  void set_unexpected_budget(std::size_t bytes);
  std::size_t unexpected_budget() const;

  /// Reserve room for an inbound eager message of `bytes` payload.
  /// Returns false (and counts a refusal) if the store cannot take it.
  /// Reservations are released by the matching deliver_eager().
  bool admit_eager(std::size_t bytes);

  /// Drop a reservation whose eager send failed before delivery.
  void release_eager_admission(std::size_t bytes);

  /// Counters for tests/diagnostics.
  std::size_t posted_count() const;
  std::size_t unexpected_count() const;
  std::size_t unexpected_bytes() const;
  std::size_t unexpected_bytes_high_water() const;
  std::uint64_t eager_refused() const;

  // ---- Progress watchdog hooks --------------------------------------

  /// Install the watchdog's failure detector: `unreachable(peer)` answers
  /// whether `peer` (global rank) can still reach this rank. `horizon` is
  /// the virtual-time grace period granted to an operation before a dead
  /// peer cancels it.
  void set_watchdog(usec_t horizon,
                    std::function<bool(rank_t)> unreachable);

  /// Cancel every posted receive whose (non-wildcard) peer the watchdog's
  /// failure detector reports unreachable. Each canceled request completes
  /// with `code`, stamped at posted_at + horizon. Returns how many were
  /// canceled.
  std::size_t cancel_unreachable(ErrorCode code);

  /// Earliest ft_deadline_us among posted receives, or 0 when none carry
  /// one. The watchdog uses the global minimum across all ranks to pick
  /// the stall-cancel cohort.
  usec_t min_ft_deadline() const;

  /// Cancel every posted receive carrying an ft_deadline_us at or below
  /// `before_deadline_us`. Called by the watchdog only after a sustained
  /// global stall (Session::kFtStallSweeps) — the FT agreement safety
  /// valve. The window restricts each stall round to the globally oldest
  /// cohort of deadline receives: cancelling only the operation that is
  /// actually stuck lets a lagging rank catch up without poisoning newer
  /// collectives other ranks are blocked in behind it. Each cancellation
  /// completes with `code`, stamped at the deadline.
  std::size_t cancel_expired(ErrorCode code, usec_t before_deadline_us);

  /// Cancel every posted receive on `context` with `code` (communicator
  /// revocation): the revoking rank interrupts peers blocked in
  /// operations on the revoked communicator. Stamped at posted_at — the
  /// revocation is an external event, not a timeout.
  std::size_t cancel_context(int context, ErrorCode code);

  /// Wake any blocked probe loops so they re-evaluate reachability.
  void notify_waiters();

  /// MPI_Cancel on a receive: remove the posted receive owned by
  /// `request` and complete it with ErrorCode::kCancelled. False when no
  /// such receive is queued (it already matched — cancellation lost the
  /// race and the receive completes normally).
  bool cancel_posted(const RequestState* request);

  // --- One-sided windows (RMA) ---------------------------------------
  // The target-side state of every window this rank currently exposes,
  // keyed by the collectively-derived window id. Registration happens on
  // the rank's own thread (Win::create/free); lookup happens on the
  // device polling thread resolving incoming RMA packets.

  void register_window(std::uint64_t win_id, WinTarget* target);
  void unregister_window(std::uint64_t win_id);
  WinTarget* find_window(std::uint64_t win_id);

 private:
  struct Unexpected {
    Envelope env;
    ChunkRef payload;  // eager only: refcounted view of the stored bytes —
                       // either the delivering frame's own slab (zero-copy
                       // handoff) or a pool chunk staged on arrival
    bool rendezvous = false;
    RendezvousMatch on_match;        // rendezvous only
    EagerConsumed on_consumed;       // eager only; may be empty
    std::size_t charge = 0;          // bytes held against the budget
    /// Virtual time at which the message became available (the delivering
    /// thread's lane). A later-posted receive synchronizes to this before
    /// completing — the causal edge from delivery to matching.
    usec_t available_at = 0.0;
  };

  static bool matches(const PostedRecv& posted, const Envelope& env) {
    return posted.context == env.context &&
           (posted.source == kAnySource || posted.source == env.src) &&
           (posted.tag == kAnyTag || posted.tag == env.tag);
  }

  /// Unpack `payload` into the posted buffer and complete its request,
  /// converting byte order when the sender's wire format differs from
  /// this node's (the ADI's heterogeneity management).
  void finish_recv(const PostedRecv& posted, const Envelope& env,
                   byte_span payload);

  rank_t global_rank_;
  sim::Node& node_;
  mutable std::mutex mutex_;
  std::condition_variable unexpected_arrived_;
  std::deque<PostedRecv> posted_;
  std::deque<Unexpected> unexpected_;

  // Store accounting (guarded by mutex_). stored_ counts bytes actually
  // buffered in unexpected_; reserved_ counts admitted-but-not-yet-
  // delivered eager transfers. Both are charged payload + overhead.
  std::size_t budget_ = 0;  // 0 = unlimited
  std::size_t stored_ = 0;
  std::size_t reserved_ = 0;
  std::size_t stored_high_water_ = 0;
  std::uint64_t eager_refused_ = 0;

  // Watchdog (set once at session start, before ranks run).
  usec_t watchdog_horizon_ = 0.0;
  std::function<bool(rank_t)> peer_unreachable_;

  // One-sided windows exposed by this rank (guarded by mutex_; the
  // WinTarget objects themselves carry their own lock).
  std::map<std::uint64_t, WinTarget*> windows_;
};

}  // namespace madmpi::mpi
