// Internal: the state shared by every rank's handle of one communicator.
// Included by comm.cpp and collectives.cpp only.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/coll_topo.hpp"
#include "mpi/comm.hpp"

namespace madmpi::mpi {

/// The group maps communicator ranks to global ranks; `context` is the
/// point-to-point context id and `context + 1` the collective one (the
/// classic MPICH two-context scheme keeping collective traffic from
/// matching user receives).
struct Comm::Shared {
  Runtime* runtime = nullptr;
  int context = 0;
  std::vector<rank_t> group;

  /// Collective tuning; every rank must configure identically.
  CollectiveConfig collectives;

  /// Per-comm-rank error handlers (MPI_Comm_set_errhandler is local, so
  /// each rank owns its slot; the mutex covers world comms where every
  /// rank thread shares this object). Empty vector = all errors_return().
  std::mutex errhandler_mutex;
  std::vector<Errhandler> errhandlers;

  // Per-rank count of derived-communicator creations (collective calls, so
  // all ranks' counters stay equal; used to derive matching context ids).
  std::vector<int> creation_seq;

  // Per-rank count of fault-tolerant collective invocations. Collectives
  // are called in lockstep on every rank, so the counters stay equal and
  // serve as the epoch in FT message tags — quarantining stragglers of a
  // failed collective from the next one's matching. Lazily sized so every
  // Shared creation path (world/dup/split/create/shrink) gets it for free.
  std::vector<int> coll_epoch;

  // Per-rank count of nonblocking-collective starts. Like coll_epoch these
  // stay equal across ranks (i-colls are collective calls), and the value
  // stamps each operation's instance tag so concurrent outstanding i-colls
  // never cross-match (two iallreduces sharing one tag can overtake each
  // other at a folded pair — the schedules have no cross-op ordering).
  std::vector<std::uint64_t> icoll_seq;

  // Per-rank count of NIC-offloaded collective invocations; keys the
  // runtime-wide offload board so back-to-back offloaded barriers on the
  // same communicator land on distinct board slots.
  std::vector<std::uint64_t> offload_seq;

  // Topology digest for the hierarchical algorithms, built on first use.
  // Deterministic per (runtime, group), so every rank's lazy build agrees.
  std::shared_ptr<const CollTopo> topo;

  std::mutex seq_mutex;
  int next_seq(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    return creation_seq[static_cast<std::size_t>(comm_rank)]++;
  }
  int next_epoch(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    if (coll_epoch.size() < group.size()) coll_epoch.resize(group.size(), 0);
    return coll_epoch[static_cast<std::size_t>(comm_rank)]++;
  }
  std::uint64_t next_icoll_seq(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    if (icoll_seq.size() < group.size()) icoll_seq.resize(group.size(), 0);
    return icoll_seq[static_cast<std::size_t>(comm_rank)]++;
  }
  std::uint64_t next_offload_seq(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    if (offload_seq.size() < group.size()) offload_seq.resize(group.size(), 0);
    return offload_seq[static_cast<std::size_t>(comm_rank)]++;
  }
};

}  // namespace madmpi::mpi
