// Internal: the state shared by every rank's handle of one communicator.
// Included by comm.cpp and collectives.cpp only.
#pragma once

#include <mutex>
#include <vector>

#include "mpi/comm.hpp"

namespace madmpi::mpi {

/// The group maps communicator ranks to global ranks; `context` is the
/// point-to-point context id and `context + 1` the collective one (the
/// classic MPICH two-context scheme keeping collective traffic from
/// matching user receives).
struct Comm::Shared {
  Runtime* runtime = nullptr;
  int context = 0;
  std::vector<rank_t> group;

  /// Collective tuning; every rank must configure identically.
  CollectiveConfig collectives;

  /// Per-comm-rank error handlers (MPI_Comm_set_errhandler is local, so
  /// each rank owns its slot; the mutex covers world comms where every
  /// rank thread shares this object). Empty vector = all errors_return().
  std::mutex errhandler_mutex;
  std::vector<Errhandler> errhandlers;

  // Per-rank count of derived-communicator creations (collective calls, so
  // all ranks' counters stay equal; used to derive matching context ids).
  std::vector<int> creation_seq;

  // Per-rank count of fault-tolerant collective invocations. Collectives
  // are called in lockstep on every rank, so the counters stay equal and
  // serve as the epoch in FT message tags — quarantining stragglers of a
  // failed collective from the next one's matching. Lazily sized so every
  // Shared creation path (world/dup/split/create/shrink) gets it for free.
  std::vector<int> coll_epoch;

  std::mutex seq_mutex;
  int next_seq(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    return creation_seq[static_cast<std::size_t>(comm_rank)]++;
  }
  int next_epoch(rank_t comm_rank) {
    std::lock_guard<std::mutex> lock(seq_mutex);
    if (coll_epoch.size() < group.size()) coll_epoch.resize(group.size(), 0);
    return coll_epoch[static_cast<std::size_t>(comm_rank)]++;
  }
};

}  // namespace madmpi::mpi
