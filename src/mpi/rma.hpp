// One-sided (RMA) building blocks shared between the generic MPI layer and
// the ch_mad device: the wire descriptor carried EXPRESS with every
// one-sided packet, and the target-side window state the polling thread
// operates on.
//
// Design (ROADMAP "RMA over the slab pool"; the RDMA-channel literature in
// PAPERS.md): a window is a registered memory region. A put travels as one
// control header plus a ChunkRef body the target-side handler lands
// directly into window memory — no unexpected-store staging, no rendezvous
// bounce. Epoch completion is a per-origin cumulative ledger: each
// put/accumulate applied at the target bumps `applied[origin]`; a fence or
// unlock carries the origin's cumulative sent-count and is acknowledged
// once the ledger catches up, so completion needs no per-message acks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/slab_pool.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "mpi/datatype.hpp"
#include "mpi/op.hpp"

namespace madmpi::mpi {

/// The one-sided verbs as they appear on the wire.
enum class RmaKind : std::uint8_t {
  kNone = 0,
  kPut,         // data lands at desc.offset in the target window
  kGet,         // request: target replies with window bytes
  kGetReply,    // reply carrying the requested bytes
  kAccumulate,  // data combined into the window with desc.op
  kLock,        // passive-target lock request
  kLockGrant,   // lock granted (reply)
  kUnlock,      // lock release + completion fence (carries op_count)
  kSync,        // active-target completion fence (carries op_count)
  kAck,         // kSync/kUnlock acknowledgement
};

enum class RmaLockType : std::uint8_t { kNone = 0, kShared, kExclusive };

/// Element type of a one-sided transfer. Only the primitive widths matter
/// on the wire (byte-swap on heterogeneous peers) plus the arithmetic kind
/// for accumulate; derived datatypes pack at the origin and travel as
/// kByte (no swap — matching MPI's restriction of accumulate to
/// predefined types).
enum class RmaType : std::uint8_t {
  kByte = 0,
  kInt8,
  kUint8,
  kInt32,
  kUint32,
  kInt64,
  kUint64,
  kFloat32,
  kFloat64,
};

inline Datatype rma_datatype(RmaType type) {
  switch (type) {
    case RmaType::kByte: return Datatype::byte();
    case RmaType::kInt8: return Datatype::int8();
    case RmaType::kUint8: return Datatype::uint8();
    case RmaType::kInt32: return Datatype::int32();
    case RmaType::kUint32: return Datatype::uint32();
    case RmaType::kInt64: return Datatype::int64();
    case RmaType::kUint64: return Datatype::uint64();
    case RmaType::kFloat32: return Datatype::float32();
    case RmaType::kFloat64: return Datatype::float64();
  }
  return Datatype::byte();
}

inline std::size_t rma_type_width(RmaType type) {
  switch (type) {
    case RmaType::kByte:
    case RmaType::kInt8:
    case RmaType::kUint8: return 1;
    case RmaType::kInt32:
    case RmaType::kUint32:
    case RmaType::kFloat32: return 4;
    case RmaType::kInt64:
    case RmaType::kUint64:
    case RmaType::kFloat64: return 8;
  }
  return 1;
}

/// Reduction selector for accumulate (the wire-encodable subset of Op).
/// kReplace is MPI_REPLACE: a plain store, giving MPI_Put semantics.
enum class RmaOp : std::uint8_t {
  kReplace = 0,
  kSum,
  kProd,
  kMin,
  kMax,
  kLand,
  kLor,
  kBand,
  kBor,
  kBxor,
};

inline Op rma_op(RmaOp op) {
  switch (op) {
    case RmaOp::kSum: return Op::sum();
    case RmaOp::kProd: return Op::prod();
    case RmaOp::kMin: return Op::min();
    case RmaOp::kMax: return Op::max();
    case RmaOp::kLand: return Op::land();
    case RmaOp::kLor: return Op::lor();
    case RmaOp::kBand: return Op::band();
    case RmaOp::kBor: return Op::bor();
    case RmaOp::kBxor: return Op::bxor();
    case RmaOp::kReplace: break;  // handled by the caller as a store
  }
  return Op::sum();
}

/// The fixed one-sided descriptor carried EXPRESS in the ch_mad packet
/// header (flat POD; unused fields are zero for kinds that do not need
/// them, like the rest of PacketHeader).
struct RmaDesc {
  std::uint64_t win_id = 0;
  RmaKind kind = RmaKind::kNone;
  RmaType type = RmaType::kByte;
  RmaOp op = RmaOp::kReplace;
  RmaLockType lock = RmaLockType::kNone;
  std::uint64_t offset = 0;    // byte offset into the target window
  std::uint64_t bytes = 0;     // payload bytes (put/accumulate/get)
  std::uint64_t op_count = 0;  // cumulative ops sent (kSync/kUnlock fence)
};

/// Target-side state of one window exposure on one rank. Registered in the
/// rank's RankContext so the device polling thread resolves incoming RMA
/// packets by window id; every field below `mutex` is guarded by it.
///
/// Closure discipline: methods returning closures are called with `mutex`
/// held and the closures must be run after it is released — they send
/// packets (lock grants, fence acks) and sending from under a window lock
/// would invert the lock order against the poller.
struct WinTarget {
  std::byte* base = nullptr;
  std::size_t bytes = 0;
  ChunkRef backing;  // non-null when the window is slab-allocated

  std::mutex mutex;
  std::condition_variable cv;  // wakes same-node lock waiters

  // Passive-target lock state (FIFO-fair: a new request is granted only
  // when no earlier waiter is queued).
  int shared_holders = 0;
  bool exclusive_held = false;
  struct LockWaiter {
    RmaLockType type = RmaLockType::kShared;
    std::function<void()> grant;  // runs once the lock is handed over
  };
  std::deque<LockWaiter> waiters;

  // Cumulative puts/accumulates applied, per origin global rank: the
  // epoch-completion ledger.
  std::map<rank_t, std::uint64_t> applied;

  // Fence/unlock acknowledgements waiting for the ledger to catch up.
  struct PendingAck {
    rank_t origin = kInvalidRank;
    std::uint64_t expect = 0;
    RmaLockType release = RmaLockType::kNone;  // unlock: lock to drop first
    std::function<void()> fire;
  };
  std::vector<PendingAck> pending_acks;

  // Stats (introspection / tests).
  std::uint64_t puts_applied = 0;
  std::uint64_t accs_applied = 0;

  bool grantable(RmaLockType type) const {
    if (!waiters.empty()) return false;
    if (type == RmaLockType::kExclusive) {
      return !exclusive_held && shared_holders == 0;
    }
    return !exclusive_held;
  }

  void acquire(RmaLockType type) {
    if (type == RmaLockType::kExclusive) {
      exclusive_held = true;
    } else {
      ++shared_holders;
    }
  }

  /// Hand the lock to as many queued waiters as the state admits: the
  /// head exclusive waiter alone, or every leading shared waiter.
  std::vector<std::function<void()>> grant_waiters() {
    std::vector<std::function<void()>> grants;
    while (!waiters.empty()) {
      LockWaiter& head = waiters.front();
      if (head.type == RmaLockType::kExclusive) {
        if (exclusive_held || shared_holders > 0) break;
        exclusive_held = true;
        grants.push_back(std::move(head.grant));
        waiters.pop_front();
        break;
      }
      if (exclusive_held) break;
      ++shared_holders;
      grants.push_back(std::move(head.grant));
      waiters.pop_front();
    }
    cv.notify_all();
    return grants;
  }

  std::vector<std::function<void()>> release_and_grant(RmaLockType type) {
    if (type == RmaLockType::kExclusive) {
      exclusive_held = false;
    } else if (shared_holders > 0) {
      --shared_holders;
    }
    return grant_waiters();
  }

  /// One put/accumulate from `origin` was applied: bump the ledger and
  /// collect every fence acknowledgement (plus any lock grants an unlock
  /// release unblocks) that became runnable.
  std::vector<std::function<void()>> note_applied(rank_t origin) {
    ++applied[origin];
    std::vector<std::function<void()>> ready;
    const std::uint64_t level = applied[origin];
    for (auto it = pending_acks.begin(); it != pending_acks.end();) {
      if (it->origin == origin && level >= it->expect) {
        if (it->release != RmaLockType::kNone) {
          auto grants = release_and_grant(it->release);
          for (auto& grant : grants) ready.push_back(std::move(grant));
        }
        ready.push_back(std::move(it->fire));
        it = pending_acks.erase(it);
      } else {
        ++it;
      }
    }
    return ready;
  }
};

}  // namespace madmpi::mpi
