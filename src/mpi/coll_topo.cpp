#include "mpi/coll_topo.hpp"

#include <algorithm>
#include <map>

#include "mpi/runtime.hpp"

namespace madmpi::mpi {

std::shared_ptr<const CollTopo> build_coll_topo(
    Runtime& runtime, const std::vector<rank_t>& group) {
  auto topo = std::make_shared<CollTopo>();
  const std::size_t n = group.size();
  topo->island_of.resize(n, 0);

  // Islands: group comm ranks by hosting node, ordered by first member
  // (equivalently by leader, since ranks scan ascending).
  std::map<const sim::Node*, int> island_index;
  for (std::size_t r = 0; r < n; ++r) {
    const sim::Node* node = &runtime.node_of(group[r]);
    auto [it, inserted] =
        island_index.try_emplace(node, static_cast<int>(topo->islands.size()));
    if (inserted) topo->islands.emplace_back();
    topo->islands[static_cast<std::size_t>(it->second)].members.push_back(
        static_cast<rank_t>(r));
    topo->island_of[r] = it->second;
  }

  const std::size_t isles = topo->islands.size();
  if (isles <= 1) {
    if (isles == 1) topo->clusters.push_back({0});
    return topo;
  }

  // Leader-graph link qualities. The worst quality present is the
  // "interconnect" class; clusters are the connected components over
  // strictly-better links. Homogeneous leader graphs (min == max) form a
  // single cluster.
  auto leader_global = [&](std::size_t i) {
    return group[static_cast<std::size_t>(topo->islands[i].members[0])];
  };
  int min_q = 0, max_q = 0;
  std::vector<std::vector<int>> quality(isles, std::vector<int>(isles, 0));
  bool first = true;
  for (std::size_t i = 0; i < isles; ++i) {
    for (std::size_t j = i + 1; j < isles; ++j) {
      const CollLink link =
          runtime.coll_link(leader_global(i), leader_global(j));
      quality[i][j] = quality[j][i] = link.quality;
      if (first || link.quality < min_q) min_q = link.quality;
      if (first || link.quality > max_q) max_q = link.quality;
      first = false;
    }
  }

  std::vector<int> component(isles, -1);
  int clusters = 0;
  for (std::size_t seed = 0; seed < isles; ++seed) {
    if (component[seed] >= 0) continue;
    const int c = clusters++;
    std::vector<std::size_t> frontier{seed};
    component[seed] = c;
    while (!frontier.empty()) {
      const std::size_t at = frontier.back();
      frontier.pop_back();
      for (std::size_t next = 0; next < isles; ++next) {
        if (component[next] >= 0 || next == at) continue;
        const bool linked =
            min_q == max_q || quality[at][next] > min_q;
        if (!linked) continue;
        component[next] = c;
        frontier.push_back(next);
      }
    }
  }
  topo->clusters.resize(static_cast<std::size_t>(clusters));
  for (std::size_t i = 0; i < isles; ++i) {
    topo->islands[i].cluster = component[i];
    topo->clusters[static_cast<std::size_t>(component[i])].push_back(
        static_cast<int>(i));
  }

  // Offload capability: every inter-island leader edge must carry the
  // same offload-capable protocol class (a NIC tree cannot span SCI and
  // Myrinet firmware). Probe the edges from island 0's leader; the
  // homogeneity requirement (min == max, so one cluster) covers the rest.
  if (topo->single_cluster()) {
    bool capable = true;
    CollLink sample;
    for (std::size_t j = 1; j < isles && capable; ++j) {
      const CollLink link =
          runtime.coll_link(leader_global(0), leader_global(j));
      if (!link.offload) capable = false;
      sample = link;
    }
    if (capable) {
      topo->offload_capable = true;
      topo->offload_post_us = sample.offload_post_us;
      topo->offload_hop_us = sample.offload_hop_us;
      topo->offload_bytes_per_us = sample.offload_bytes_per_us;
      topo->offload_notify_us = sample.offload_notify_us;
    }
  }
  return topo;
}

std::vector<rank_t> cluster_leader_list(const CollTopo& topo, int cluster,
                                        int root_island, rank_t root) {
  std::vector<rank_t> out;
  const auto& isles = topo.clusters[static_cast<std::size_t>(cluster)];
  const bool has_root =
      std::find(isles.begin(), isles.end(), root_island) != isles.end();
  if (has_root) out.push_back(root);
  for (int isle : isles) {
    if (isle != root_island) out.push_back(topo.leader_of_island(isle));
  }
  return out;
}

std::vector<rank_t> island_member_list(const CollTopo& topo, int island,
                                       int root_island, rank_t root) {
  const auto& members =
      topo.islands[static_cast<std::size_t>(island)].members;
  if (island != root_island) return members;
  std::vector<rank_t> out{root};
  for (rank_t r : members) {
    if (r != root) out.push_back(r);
  }
  return out;
}

std::vector<rank_t> rep_list(const CollTopo& topo, int root_cluster,
                             rank_t root) {
  std::vector<rank_t> out{root};
  for (std::size_t c = 0; c < topo.clusters.size(); ++c) {
    if (static_cast<int>(c) != root_cluster) {
      out.push_back(topo.rep_of_cluster(static_cast<int>(c)));
    }
  }
  return out;
}

}  // namespace madmpi::mpi
