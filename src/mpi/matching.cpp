#include "mpi/matching.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/datapath_stats.hpp"
#include "common/log.hpp"
#include "marcel/engine.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace madmpi::mpi {

void RankContext::finish_recv(const PostedRecv& posted, const Envelope& env,
                              byte_span payload) {
  // A message longer than the posted buffer is an application error
  // (MPI_ERR_TRUNCATE), not a reason to abort the harness: per the MPI
  // spec the prefix that fits is delivered and the error travels on the
  // operation's status. A payload *shorter* than its envelope claims is
  // the mirror image — a malformed ragged tail (truncated unpack on the
  // wire): deliver what arrived and report the same error.
  const bool truncated = env.bytes > posted.capacity_bytes ||
                         payload.size() < env.bytes;
  if (truncated && payload.size() > posted.capacity_bytes) {
    payload = payload.first(posted.capacity_bytes);
  }
  // Heterogeneity: big-endian wire data must be byte-swapped into host
  // order before unpacking. The conversion pass is only *charged* when the
  // two nodes genuinely differ (a big-endian pair exchanges big-endian
  // wire data for free). Swapping covers the whole payload including a
  // ragged-tail partial element — the tail bytes are delivered in host
  // order like everything else, not as raw wire bytes.
  std::vector<std::byte> converted;
  if (env.sender_big_endian && !payload.empty()) {
    converted.assign(payload.begin(), payload.end());
    DatapathStats::global().count_staging_alloc();
    count_real_copy(converted.size());
    posted.type.swap_packed_bytes(converted.data(), converted.size());
    payload = byte_span{converted.data(), converted.size()};
  }
  if (env.sender_big_endian != node_.big_endian() && !payload.empty()) {
    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
  }
  if (!payload.empty()) {
    // Unpack the wire representation through the receive datatype. This is
    // the mandatory final placement into the application buffer (present
    // identically in every MPI implementation), so it is excluded from the
    // staging-copy metric. The element count actually received may be
    // smaller than posted.
    const std::size_t elem_size = posted.type.size();
    const int elements =
        elem_size == 0 ? 0 : static_cast<int>(payload.size() / elem_size);
    posted.type.unpack(payload.data(), elements, posted.buffer);
    // A possible ragged tail (partial element) is delivered raw.
    const std::size_t tail = elem_size == 0 ? 0 : payload.size() % elem_size;
    if (tail != 0) {
      auto* base = static_cast<std::byte*>(posted.buffer);
      std::memcpy(base + posted.type.extent() * static_cast<std::size_t>(
                             elements),
                  payload.data() + payload.size() - tail, tail);
    }
  }
  MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = payload.size();
  if (truncated) status.error = ErrorCode::kTruncated;
  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kComplete,
             status.bytes, "recv");
  posted.request->complete(status);
}

void RankContext::post_recv(PostedRecv posted) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(posted, it->env)) continue;
    Unexpected message = std::move(*it);
    unexpected_.erase(it);
    stored_ -= std::min(stored_, message.charge);
    lock.unlock();

    // Causal edge: the match cannot happen before the message was
    // delivered, whatever the posting thread's own lane says.
    node_.clock().sync_to(message.available_at);
    if (message.rendezvous) {
      // Late receive for an early rendezvous request: fire the stored
      // acknowledgement action (paper §4.2.2, step 2).
      message.on_match(message.env, std::move(posted));
    } else {
      node_.clock().advance(static_cast<double>(message.payload.size()) *
                            sim::kHostCopyUsPerByte);
      // Credits first, completion second: once finish_recv() completes the
      // request the application may reach finalize(), and a credit-return
      // thread spawned after that loses the shutdown-drain race (its
      // packet lands behind the termination marker and is never read).
      if (message.on_consumed) message.on_consumed();
      finish_recv(posted, message.env, message.payload.span());
    }
    return;
  }
  posted_.push_back(std::move(posted));
}

void RankContext::deliver_eager(const Envelope& env, byte_span payload,
                                EagerConsumed on_consumed, ChunkRef backing) {
  const std::size_t charge = payload.size() + kUnexpectedEntryOverhead;
  std::unique_lock<std::mutex> lock(mutex_);
  // The sender's admission reserved room for this message; delivery
  // resolves the reservation — into the store if unmatched, or released
  // outright on an immediate match. Clamped: directly-driven contexts
  // (unit tests, self-sends) deliver without admitting first.
  reserved_ -= std::min(reserved_, charge);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(*it, env)) continue;
    PostedRecv posted = std::move(*it);
    posted_.erase(it);
    lock.unlock();

    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
    sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kMatch,
               payload.size(), "posted");
    // Same ordering as the unexpected-drain path: the device's credit
    // return must be registered before the receive is observably complete,
    // or a poller-thread consume can spawn its credit packet after the
    // application already entered finalize() (see shutdown() phase 0).
    if (on_consumed) on_consumed();
    finish_recv(posted, env, payload);
    return;
  }
  // No receive posted yet: buffer the payload. With a backing chunk the
  // store just keeps the reference — the wire slab IS the unexpected
  // buffer, no host bytes move. Without one (legacy/self-send callers) it
  // stages through the slab pool, which counts the copy and — on a cache
  // miss only — the allocation.
  Unexpected message;
  message.env = env;
  if (backing) {
    message.payload = std::move(backing);
  } else if (!payload.empty()) {
    message.payload = SlabPool::global().stage(payload);
  }
  message.on_consumed = std::move(on_consumed);
  message.charge = charge;
  stored_ += charge;
  if (stored_ > stored_high_water_) stored_high_water_ = stored_;
  message.available_at =
      node_.clock().advance(static_cast<double>(payload.size()) *
                            sim::kHostCopyUsPerByte);
  sim::trace(message.available_at, node_.id(), sim::TraceCategory::kMatch,
             payload.size(), "unexpected");
  unexpected_.push_back(std::move(message));
  lock.unlock();
  unexpected_arrived_.notify_all();
  marcel::engine_notify();
}

void RankContext::deliver_rendezvous(const Envelope& env,
                                     RendezvousMatch on_match) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(*it, env)) continue;
    PostedRecv posted = std::move(*it);
    posted_.erase(it);
    lock.unlock();
    on_match(env, std::move(posted));
    return;
  }
  Unexpected message;
  message.env = env;
  message.rendezvous = true;
  message.on_match = std::move(on_match);
  message.available_at = node_.clock().now();
  unexpected_.push_back(std::move(message));
  lock.unlock();
  unexpected_arrived_.notify_all();
  marcel::engine_notify();
}

bool RankContext::iprobe(int context, rank_t source, int tag,
                         MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& message : unexpected_) {
    if (!matches(pattern, message.env)) continue;
    node_.clock().sync_to(message.available_at);
    if (status != nullptr) {
      status->source = message.env.src;
      status->tag = message.env.tag;
      status->bytes = message.env.bytes;
    }
    return true;
  }
  return false;
}

void RankContext::probe(int context, rank_t source, int tag,
                        rank_t source_global, MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  const usec_t probed_at = node_.clock().now();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (const auto& message : unexpected_) {
      if (!matches(pattern, message.env)) continue;
      node_.clock().sync_to(message.available_at);
      if (status != nullptr) {
        status->source = message.env.src;
        status->tag = message.env.tag;
        status->bytes = message.env.bytes;
      }
      return;
    }
    // Watchdog-aware wait: a probe for a peer that can no longer reach us
    // would otherwise block forever (the unbounded-wait bug). Wildcard
    // probes keep waiting — some peer may still be alive.
    if (peer_unreachable_ && source_global != kInvalidRank &&
        peer_unreachable_(source_global)) {
      node_.clock().sync_to(probed_at + watchdog_horizon_);
      if (status != nullptr) {
        status->source = source;
        status->tag = tag;
        status->bytes = 0;
        status->error = ErrorCode::kTimedOut;
      }
      return;
    }
    if (marcel::on_fiber()) {
      // Park the fiber instead of blocking its shard worker. The
      // predicate consults the failure detector *without* holding the
      // queue lock (the detector may take channel/session locks that
      // delivery paths hold while calling into us).
      lock.unlock();
      marcel::park_until([this, &pattern, source_global] {
        std::function<bool(rank_t)> detector;
        {
          std::lock_guard<std::mutex> guard(mutex_);
          for (const auto& message : unexpected_) {
            if (matches(pattern, message.env)) return true;
          }
          detector = peer_unreachable_;
        }
        return detector != nullptr && source_global != kInvalidRank &&
               detector(source_global);
      });
      lock.lock();
    } else if (peer_unreachable_) {
      unexpected_arrived_.wait_for(lock, std::chrono::milliseconds(2));
    } else {
      unexpected_arrived_.wait(lock);
    }
  }
}

std::size_t RankContext::posted_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return posted_.size();
}

std::size_t RankContext::unexpected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unexpected_.size();
}

void RankContext::set_unexpected_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_ = bytes;
}

std::size_t RankContext::unexpected_budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

bool RankContext::admit_eager(std::size_t bytes) {
  const std::size_t charge = bytes + kUnexpectedEntryOverhead;
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_ != 0 && stored_ + reserved_ + charge > budget_) {
    ++eager_refused_;
    return false;
  }
  reserved_ += charge;
  return true;
}

void RankContext::release_eager_admission(std::size_t bytes) {
  const std::size_t charge = bytes + kUnexpectedEntryOverhead;
  std::lock_guard<std::mutex> lock(mutex_);
  reserved_ -= std::min(reserved_, charge);
}

std::size_t RankContext::unexpected_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stored_;
}

std::size_t RankContext::unexpected_bytes_high_water() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stored_high_water_;
}

std::uint64_t RankContext::eager_refused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eager_refused_;
}

void RankContext::set_watchdog(usec_t horizon,
                               std::function<bool(rank_t)> unreachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  watchdog_horizon_ = horizon;
  peer_unreachable_ = std::move(unreachable);
}

std::size_t RankContext::cancel_unreachable(ErrorCode code) {
  std::function<bool(rank_t)> unreachable;
  usec_t horizon = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    unreachable = peer_unreachable_;
    horizon = watchdog_horizon_;
  }
  if (!unreachable) return 0;

  // The failure detector may take channel/session locks, and delivery
  // paths hold those while calling into us — so consult it *without*
  // holding the queue lock: snapshot the peers waited on, query the
  // detector unlocked, then re-take the lock to remove victims.
  std::vector<PostedRecv> victims;
  std::vector<rank_t> peers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& posted : posted_) {
      if (posted.source_global == kInvalidRank) continue;
      if (std::find(peers.begin(), peers.end(), posted.source_global) ==
          peers.end()) {
        peers.push_back(posted.source_global);
      }
    }
  }
  std::vector<rank_t> dead;
  for (rank_t peer : peers) {
    if (unreachable(peer)) dead.push_back(peer);
  }
  if (dead.empty()) return 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = posted_.begin(); it != posted_.end();) {
      if (it->source_global != kInvalidRank &&
          std::find(dead.begin(), dead.end(), it->source_global) !=
              dead.end()) {
        victims.push_back(std::move(*it));
        it = posted_.erase(it);
      } else {
        ++it;
      }
    }
  }

  for (PostedRecv& posted : victims) {
    // Deterministic stamp: the error is observed `horizon` after the
    // post, not whenever the wall-clock watchdog thread got scheduled.
    node_.clock().bind_lane(posted.posted_at + horizon);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "watchdog-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

usec_t RankContext::min_ft_deadline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  usec_t min_deadline = 0.0;
  for (const PostedRecv& posted : posted_) {
    if (posted.ft_deadline_us <= 0.0) continue;
    if (min_deadline == 0.0 || posted.ft_deadline_us < min_deadline) {
      min_deadline = posted.ft_deadline_us;
    }
  }
  return min_deadline;
}

std::size_t RankContext::cancel_expired(ErrorCode code,
                                        usec_t before_deadline_us) {
  // Only called after a sustained global stall: nothing is advancing
  // virtual time anywhere, so the oldest pending deadline-carrying
  // receives can never complete. Only the cohort at or below
  // `before_deadline_us` is cancelled, stamped at their deadlines (the
  // deadline is the deterministic virtual observation time, not the
  // trigger; wall-clock stall detection is the trigger). Newer deadline
  // receives — operations merely blocked behind the stuck one — are left
  // alone; unsticking the oldest either revives them or earns them their
  // own stall round.
  std::vector<PostedRecv> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = posted_.begin(); it != posted_.end();) {
      if (it->ft_deadline_us > 0.0 &&
          it->ft_deadline_us <= before_deadline_us) {
        victims.push_back(std::move(*it));
        it = posted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (PostedRecv& posted : victims) {
    node_.clock().bind_lane(posted.ft_deadline_us);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "ft-deadline-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

std::size_t RankContext::cancel_context(int context, ErrorCode code) {
  std::vector<PostedRecv> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = posted_.begin(); it != posted_.end();) {
      if (it->context == context) {
        victims.push_back(std::move(*it));
        it = posted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (PostedRecv& posted : victims) {
    node_.clock().bind_lane(posted.posted_at);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "revoke-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

void RankContext::notify_waiters() {
  unexpected_arrived_.notify_all();
  marcel::engine_notify();
}

bool RankContext::cancel_posted(const RequestState* request) {
  PostedRecv victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(posted_.begin(), posted_.end(),
                           [request](const PostedRecv& posted) {
                             return posted.request.get() == request;
                           });
    if (it == posted_.end()) return false;  // already matched: too late
    victim = std::move(*it);
    posted_.erase(it);
  }
  // Completed outside the queue lock (complete() signals the waiter). The
  // canceller is the rank's own thread, so its lane already carries the
  // right virtual time — no deterministic re-stamping needed.
  MpiStatus status;
  status.source = victim.source;
  status.tag = victim.tag;
  status.bytes = 0;
  status.error = ErrorCode::kCancelled;
  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kComplete,
             0, "cancel-recv");
  victim.request->complete(status);
  return true;
}

void RankContext::register_window(std::uint64_t win_id, WinTarget* target) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_[win_id] = target;
}

void RankContext::unregister_window(std::uint64_t win_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_.erase(win_id);
}

WinTarget* RankContext::find_window(std::uint64_t win_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = windows_.find(win_id);
  return it == windows_.end() ? nullptr : it->second;
}

}  // namespace madmpi::mpi
