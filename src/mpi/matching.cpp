#include "mpi/matching.hpp"

#include <cstring>

#include "common/log.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace madmpi::mpi {

void RankContext::finish_recv(const PostedRecv& posted, const Envelope& env,
                              byte_span payload) {
  // A message longer than the posted buffer is an application error
  // (MPI_ERR_TRUNCATE), not a reason to abort the harness: per the MPI
  // spec the prefix that fits is delivered and the error travels on the
  // operation's status.
  const bool truncated = env.bytes > posted.capacity_bytes;
  if (truncated && payload.size() > posted.capacity_bytes) {
    payload = payload.first(posted.capacity_bytes);
  }
  // Heterogeneity: big-endian wire data must be byte-swapped into host
  // order before unpacking. The conversion pass is only *charged* when the
  // two nodes genuinely differ (a big-endian pair exchanges big-endian
  // wire data for free). Swapping covers the whole payload including a
  // ragged-tail partial element — the tail bytes are delivered in host
  // order like everything else, not as raw wire bytes.
  std::vector<std::byte> converted;
  if (env.sender_big_endian && !payload.empty()) {
    converted.assign(payload.begin(), payload.end());
    posted.type.swap_packed_bytes(converted.data(), converted.size());
    payload = byte_span{converted.data(), converted.size()};
  }
  if (env.sender_big_endian != node_.big_endian() && !payload.empty()) {
    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
  }
  if (!payload.empty()) {
    // Unpack the wire representation through the receive datatype. The
    // element count actually received may be smaller than posted.
    const std::size_t elem_size = posted.type.size();
    const int elements =
        elem_size == 0 ? 0 : static_cast<int>(payload.size() / elem_size);
    posted.type.unpack(payload.data(), elements, posted.buffer);
    // A possible ragged tail (partial element) is delivered raw.
    const std::size_t tail = elem_size == 0 ? 0 : payload.size() % elem_size;
    if (tail != 0) {
      auto* base = static_cast<std::byte*>(posted.buffer);
      std::memcpy(base + posted.type.extent() * static_cast<std::size_t>(
                             elements),
                  payload.data() + payload.size() - tail, tail);
    }
  }
  MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = payload.size();
  if (truncated) status.error = ErrorCode::kTruncated;
  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kComplete,
             status.bytes, "recv");
  posted.request->complete(status);
}

void RankContext::post_recv(PostedRecv posted) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(posted, it->env)) continue;
    Unexpected message = std::move(*it);
    unexpected_.erase(it);
    lock.unlock();

    // Causal edge: the match cannot happen before the message was
    // delivered, whatever the posting thread's own lane says.
    node_.clock().sync_to(message.available_at);
    if (message.rendezvous) {
      // Late receive for an early rendezvous request: fire the stored
      // acknowledgement action (paper §4.2.2, step 2).
      message.on_match(message.env, std::move(posted));
    } else {
      node_.clock().advance(static_cast<double>(message.payload.size()) *
                            sim::kHostCopyUsPerByte);
      finish_recv(posted, message.env,
                  byte_span{message.payload.data(), message.payload.size()});
    }
    return;
  }
  posted_.push_back(std::move(posted));
}

void RankContext::deliver_eager(const Envelope& env, byte_span payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(*it, env)) continue;
    PostedRecv posted = std::move(*it);
    posted_.erase(it);
    lock.unlock();

    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
    sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kMatch,
               payload.size(), "posted");
    finish_recv(posted, env, payload);
    return;
  }
  // No receive posted yet: buffer the payload (the eager bounce).
  Unexpected message;
  message.env = env;
  message.payload.assign(payload.begin(), payload.end());
  message.available_at =
      node_.clock().advance(static_cast<double>(payload.size()) *
                            sim::kHostCopyUsPerByte);
  sim::trace(message.available_at, node_.id(), sim::TraceCategory::kMatch,
             payload.size(), "unexpected");
  unexpected_.push_back(std::move(message));
  lock.unlock();
  unexpected_arrived_.notify_all();
}

void RankContext::deliver_rendezvous(const Envelope& env,
                                     RendezvousMatch on_match) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (!matches(*it, env)) continue;
    PostedRecv posted = std::move(*it);
    posted_.erase(it);
    lock.unlock();
    on_match(env, std::move(posted));
    return;
  }
  Unexpected message;
  message.env = env;
  message.rendezvous = true;
  message.on_match = std::move(on_match);
  message.available_at = node_.clock().now();
  unexpected_.push_back(std::move(message));
  lock.unlock();
  unexpected_arrived_.notify_all();
}

bool RankContext::iprobe(int context, rank_t source, int tag,
                         MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& message : unexpected_) {
    if (!matches(pattern, message.env)) continue;
    node_.clock().sync_to(message.available_at);
    if (status != nullptr) {
      status->source = message.env.src;
      status->tag = message.env.tag;
      status->bytes = message.env.bytes;
    }
    return true;
  }
  return false;
}

void RankContext::probe(int context, rank_t source, int tag,
                        MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (const auto& message : unexpected_) {
      if (!matches(pattern, message.env)) continue;
      node_.clock().sync_to(message.available_at);
      if (status != nullptr) {
        status->source = message.env.src;
        status->tag = message.env.tag;
        status->bytes = message.env.bytes;
      }
      return;
    }
    unexpected_arrived_.wait(lock);
  }
}

std::size_t RankContext::posted_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return posted_.size();
}

std::size_t RankContext::unexpected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unexpected_.size();
}

}  // namespace madmpi::mpi
