#include "mpi/matching.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/datapath_stats.hpp"
#include "common/log.hpp"
#include "marcel/engine.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace madmpi::mpi {

namespace {

/// MADMPI_MATCH_BUCKETS: bucket count per rank, rounded up to a power of
/// two and clamped to [1, 4096]. The default keeps per-rank footprint
/// small while giving 1024-rank sessions essentially collision-free
/// specific-source matching.
std::size_t match_buckets_from_env() {
  std::size_t buckets = 64;
  const char* value = std::getenv("MADMPI_MATCH_BUCKETS");
  if (value != nullptr && *value != '\0') {
    const unsigned long long parsed = std::strtoull(value, nullptr, 10);
    if (parsed >= 1) buckets = static_cast<std::size_t>(parsed);
  }
  buckets = std::min<std::size_t>(buckets, 4096);
  std::size_t rounded = 1;
  while (rounded < buckets) rounded <<= 1;
  return rounded;
}

/// Fibonacci-style spread of the (context, source) key across buckets.
std::size_t bucket_index(std::uint64_t key, std::size_t mask) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

void sub_clamped(std::atomic<std::size_t>& counter, std::size_t amount) {
  std::size_t current = counter.load(std::memory_order_relaxed);
  while (current != 0 && amount != 0 &&
         !counter.compare_exchange_weak(
             current, current - std::min(current, amount),
             std::memory_order_relaxed)) {
  }
}

void raise_high_water(std::atomic<std::size_t>& high_water,
                      std::size_t value) {
  std::size_t current = high_water.load(std::memory_order_relaxed);
  while (current < value &&
         !high_water.compare_exchange_weak(current, value,
                                           std::memory_order_relaxed)) {
  }
}

/// Decrements the probe-waiter count on every exit path of probe/mprobe.
struct WaiterGuard {
  std::atomic<std::size_t>& waiters;
  ~WaiterGuard() { waiters.fetch_sub(1, std::memory_order_release); }
};

}  // namespace

RankContext::RankContext(rank_t global_rank, sim::Node& node)
    : global_rank_(global_rank),
      node_(node),
      buckets_(match_buckets_from_env()) {
  bucket_mask_ = buckets_.size() - 1;
}

RankContext::Bucket& RankContext::bucket_of(std::uint64_t key) {
  return buckets_[bucket_index(key, bucket_mask_)];
}

void RankContext::finish_recv(const PostedRecv& posted, const Envelope& env,
                              byte_span payload) {
  // A message longer than the posted buffer is an application error
  // (MPI_ERR_TRUNCATE), not a reason to abort the harness: per the MPI
  // spec the prefix that fits is delivered and the error travels on the
  // operation's status. A payload *shorter* than its envelope claims is
  // the mirror image — a malformed ragged tail (truncated unpack on the
  // wire): deliver what arrived and report the same error.
  const bool truncated = env.bytes > posted.capacity_bytes ||
                         payload.size() < env.bytes;
  if (truncated && payload.size() > posted.capacity_bytes) {
    payload = payload.first(posted.capacity_bytes);
  }
  // Heterogeneity: big-endian wire data must be byte-swapped into host
  // order before unpacking. The conversion pass is only *charged* when the
  // two nodes genuinely differ (a big-endian pair exchanges big-endian
  // wire data for free). Swapping covers the whole payload including a
  // ragged-tail partial element — the tail bytes are delivered in host
  // order like everything else, not as raw wire bytes.
  std::vector<std::byte> converted;
  if (env.sender_big_endian && !payload.empty()) {
    converted.assign(payload.begin(), payload.end());
    DatapathStats::global().count_staging_alloc();
    count_real_copy(converted.size());
    posted.type.swap_packed_bytes(converted.data(), converted.size());
    payload = byte_span{converted.data(), converted.size()};
  }
  if (env.sender_big_endian != node_.big_endian() && !payload.empty()) {
    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
  }
  if (!payload.empty()) {
    // Unpack the wire representation through the receive datatype. This is
    // the mandatory final placement into the application buffer (present
    // identically in every MPI implementation), so it is excluded from the
    // staging-copy metric. The element count actually received may be
    // smaller than posted.
    const std::size_t elem_size = posted.type.size();
    const int elements =
        elem_size == 0 ? 0 : static_cast<int>(payload.size() / elem_size);
    posted.type.unpack(payload.data(), elements, posted.buffer);
    // A possible ragged tail (partial element) is delivered raw.
    const std::size_t tail = elem_size == 0 ? 0 : payload.size() % elem_size;
    if (tail != 0) {
      auto* base = static_cast<std::byte*>(posted.buffer);
      std::memcpy(base + posted.type.extent() * static_cast<std::size_t>(
                             elements),
                  payload.data() + payload.size() - tail, tail);
    }
  }
  MpiStatus status;
  status.source = env.src;
  status.tag = env.tag;
  status.bytes = payload.size();
  if (truncated) status.error = ErrorCode::kTruncated;
  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kComplete,
             status.bytes, "recv");
  posted.request->complete(status);
}

// ---------------------------------------------------------------- lookups

bool RankContext::take_matching_posted(
    const Envelope& env, std::unique_lock<std::mutex>& rank_lock,
    std::unique_lock<std::mutex>& bucket_lock, KeyQueues** queues,
    PostedRecv* out) {
  auto& stats = DatapathStats::global();
  const std::uint64_t key = key_of(env.context, env.src);
  Bucket& bucket = bucket_of(key);
  bucket_lock = std::unique_lock<std::mutex>(bucket.mutex);
  stats.count_match_bucket_lock();
  // The wildcard poster increments wildcard_count_ *before* taking any
  // bucket lock, so reading it under ours is race-free: either we see the
  // count and upgrade, or the poster's later sweep of this bucket sees
  // whatever we append (DESIGN.md §13).
  if (wildcard_count_.load(std::memory_order_acquire) != 0) {
    bucket_lock.unlock();
    rank_lock = std::unique_lock<std::mutex>(mutex_);
    stats.count_match_rank_lock();
    bucket_lock.lock();
    stats.count_match_bucket_lock();
  }

  std::uint64_t steps = 0;
  KeyQueues& key_queues = bucket.keys[key];  // single lookup; the miss
                                             // path appends here anyway
  std::deque<PostedRecv>* bucket_queue = &key_queues.posted;
  auto bucket_hit = bucket_queue->end();
  for (auto scan = bucket_queue->begin(); scan != bucket_queue->end();
       ++scan) {
    ++steps;
    if (matches(*scan, env)) {
      bucket_hit = scan;
      break;
    }
  }
  auto wildcard_hit = wildcard_posted_.end();
  if (rank_lock.owns_lock()) {
    for (auto scan = wildcard_posted_.begin();
         scan != wildcard_posted_.end(); ++scan) {
      ++steps;
      if (matches(*scan, env)) {
        wildcard_hit = scan;
        break;
      }
    }
  }
  stats.count_match_attempt(steps);

  const bool bucket_found = bucket_hit != bucket_queue->end();
  const bool wildcard_found = wildcard_hit != wildcard_posted_.end();
  if (!bucket_found && !wildcard_found) {
    *queues = &key_queues;
    return false;
  }
  // Both structures have a candidate: the lower post seq is the receive
  // the flat arrival-order scan would have matched (FIFO non-overtaking).
  if (bucket_found &&
      (!wildcard_found || bucket_hit->seq < wildcard_hit->seq)) {
    *out = std::move(*bucket_hit);
    bucket_queue->erase(bucket_hit);
  } else {
    *out = std::move(*wildcard_hit);
    wildcard_posted_.erase(wildcard_hit);
    wildcard_count_.fetch_sub(1, std::memory_order_release);
  }
  posted_count_.fetch_sub(1, std::memory_order_relaxed);
  bucket_lock.unlock();
  if (rank_lock.owns_lock()) rank_lock.unlock();
  return true;
}

RankContext::UnexpectedHit RankContext::peek_unexpected(
    const PostedRecv& pattern) {
  auto& stats = DatapathStats::global();
  UnexpectedHit hit;
  std::uint64_t steps = 0;
  if (pattern.source != kAnySource) {
    const std::uint64_t key = key_of(pattern.context, pattern.source);
    Bucket& bucket = bucket_of(key);
    std::lock_guard<std::mutex> lock(bucket.mutex);
    stats.count_match_bucket_lock();
    auto it = bucket.keys.find(key);
    if (it != bucket.keys.end()) {
      for (const UnexpectedMessage& message : it->second.unexpected) {
        ++steps;
        if (matches(pattern, message.env)) {
          hit.bucket = &bucket;
          hit.key = key;
          hit.env = message.env;
          hit.available_at = message.available_at;
          hit.seq = message.seq;
          hit.found = true;
          break;
        }
      }
    }
    stats.count_match_attempt(steps);
    return hit;
  }
  // Wildcard source: sweep every bucket (mutex_ held by the caller, so no
  // wildcard post races us) and keep the lowest-seq candidate. Within one
  // key the deque is seq-sorted, so the first match per key suffices.
  for (Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    stats.count_match_bucket_lock();
    for (auto& [key, queues] : bucket.keys) {
      for (const UnexpectedMessage& message : queues.unexpected) {
        ++steps;
        if (!matches(pattern, message.env)) continue;
        if (!hit.found || message.seq < hit.seq) {
          hit.bucket = &bucket;
          hit.key = key;
          hit.env = message.env;
          hit.available_at = message.available_at;
          hit.seq = message.seq;
          hit.found = true;
        }
        break;  // later entries for this key have higher seqs
      }
    }
  }
  stats.count_match_attempt(steps);
  return hit;
}

bool RankContext::take_unexpected(const PostedRecv& pattern,
                                  UnexpectedMessage* out) {
  auto& stats = DatapathStats::global();
  if (pattern.source != kAnySource) {
    const std::uint64_t key = key_of(pattern.context, pattern.source);
    Bucket& bucket = bucket_of(key);
    std::lock_guard<std::mutex> lock(bucket.mutex);
    stats.count_match_bucket_lock();
    auto it = bucket.keys.find(key);
    if (it == bucket.keys.end()) {
      stats.count_match_attempt(0);
      return false;
    }
    std::uint64_t steps = 0;
    auto& queue = it->second.unexpected;
    for (auto scan = queue.begin(); scan != queue.end(); ++scan) {
      ++steps;
      if (!matches(pattern, scan->env)) continue;
      *out = std::move(*scan);
      queue.erase(scan);
      unexpected_count_.fetch_sub(1, std::memory_order_relaxed);
      sub_clamped(stored_, out->charge);
      stats.count_match_attempt(steps);
      return true;
    }
    stats.count_match_attempt(steps);
    return false;
  }
  // Wildcard source (mutex_ held by the caller): find the global
  // lowest-seq candidate, then re-lock its bucket to pop it. The entry
  // cannot vanish in between — only this rank's own thread removes
  // unexpected entries — and it stays the first match of its key's
  // seq-sorted deque.
  UnexpectedHit hit = peek_unexpected(pattern);
  if (!hit.found) return false;
  std::lock_guard<std::mutex> lock(hit.bucket->mutex);
  stats.count_match_bucket_lock();
  auto& queue = hit.bucket->keys[hit.key].unexpected;
  for (auto scan = queue.begin(); scan != queue.end(); ++scan) {
    if (!matches(pattern, scan->env)) continue;
    *out = std::move(*scan);
    queue.erase(scan);
    unexpected_count_.fetch_sub(1, std::memory_order_relaxed);
    sub_clamped(stored_, out->charge);
    return true;
  }
  MADMPI_CHECK_MSG(false, "matched unexpected entry vanished mid-take");
  return false;
}

void RankContext::consume_unexpected(UnexpectedMessage message,
                                     PostedRecv posted) {
  // Causal edge: the match cannot happen before the message was
  // delivered, whatever the posting thread's own lane says.
  node_.clock().sync_to(message.available_at);
  if (message.rendezvous) {
    // Late receive for an early rendezvous request: fire the stored
    // acknowledgement action (paper §4.2.2, step 2).
    message.on_match(message.env, std::move(posted));
    return;
  }
  node_.clock().advance(static_cast<double>(message.payload.size()) *
                        sim::kHostCopyUsPerByte);
  // Credits first, completion second: once finish_recv() completes the
  // request the application may reach finalize(), and a credit-return
  // thread spawned after that loses the shutdown-drain race (its
  // packet lands behind the termination marker and is never read).
  if (message.on_consumed) message.on_consumed();
  finish_recv(posted, message.env, message.payload.span());
}

void RankContext::wake_probes_after_append() {
  if (probe_waiters_.load(std::memory_order_acquire) == 0) return;
  // Serialize with the waiter's scan-to-wait transition: a prober that
  // missed our append registered itself before scanning, so we see its
  // count; locking the rank mutex here means it has reached the condvar
  // (or the park) before our notify fires.
  { std::lock_guard<std::mutex> lock(mutex_); }
  unexpected_arrived_.notify_all();
  marcel::engine_notify();
}

// ------------------------------------------------------------------ post

void RankContext::post_recv(PostedRecv posted) {
  if (posted.source != kAnySource) {
    // Scan-or-queue happens inside ONE bucket critical section: a delivery
    // that misses the posted queue appends its unexpected entry under the
    // same lock, so post and delivery can never both miss each other.
    const std::uint64_t key = key_of(posted.context, posted.source);
    Bucket& bucket = bucket_of(key);
    auto& stats = DatapathStats::global();
    std::unique_lock<std::mutex> lock(bucket.mutex);
    stats.count_match_bucket_lock();
    auto& queues = bucket.keys[key];
    std::uint64_t steps = 0;
    for (auto scan = queues.unexpected.begin();
         scan != queues.unexpected.end(); ++scan) {
      ++steps;
      if (!matches(posted, scan->env)) continue;
      UnexpectedMessage message = std::move(*scan);
      queues.unexpected.erase(scan);
      unexpected_count_.fetch_sub(1, std::memory_order_relaxed);
      sub_clamped(stored_, message.charge);
      stats.count_match_attempt(steps);
      lock.unlock();
      consume_unexpected(std::move(message), std::move(posted));
      return;
    }
    stats.count_match_attempt(steps);
    posted.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    queues.posted.push_back(std::move(posted));
    const std::size_t depth =
        posted_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    stats.note_match_posted_depth(depth);
    return;
  }

  // Wildcard source: rank lock for the whole post. The count is raised
  // BEFORE any bucket is inspected — a delivery that finds its bucket
  // posted-queue empty while we are mid-sweep reads a nonzero count under
  // its bucket lock and upgrades to the rank lock, where it blocks until
  // this post either matched or queued itself. No lost match either way.
  std::unique_lock<std::mutex> lock(mutex_);
  DatapathStats::global().count_match_rank_lock();
  wildcard_count_.fetch_add(1, std::memory_order_release);
  UnexpectedMessage message;
  if (take_unexpected(posted, &message)) {
    wildcard_count_.fetch_sub(1, std::memory_order_release);
    lock.unlock();
    consume_unexpected(std::move(message), std::move(posted));
    return;
  }
  posted.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  wildcard_posted_.push_back(std::move(posted));
  const std::size_t depth =
      posted_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  DatapathStats::global().note_match_posted_depth(depth);
}

// -------------------------------------------------------------- delivery

void RankContext::deliver_eager(const Envelope& env, byte_span payload,
                                EagerConsumed on_consumed, ChunkRef backing) {
  const std::size_t charge = payload.size() + kUnexpectedEntryOverhead;
  std::unique_lock<std::mutex> rank_lock;
  std::unique_lock<std::mutex> bucket_lock;
  KeyQueues* queues = nullptr;
  PostedRecv posted;
  if (take_matching_posted(env, rank_lock, bucket_lock, &queues, &posted)) {
    // The sender's admission reserved room for this message; an immediate
    // match releases the reservation outright. Clamped: directly-driven
    // contexts (unit tests, self-sends) deliver without admitting first.
    sub_clamped(reserved_, charge);
    node_.clock().advance(static_cast<double>(payload.size()) *
                          sim::kHostCopyUsPerByte);
    sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kMatch,
               payload.size(), "posted");
    // Same ordering as the unexpected-drain path: the device's credit
    // return must be registered before the receive is observably complete,
    // or a poller-thread consume can spawn its credit packet after the
    // application already entered finalize() (see shutdown() phase 0).
    if (on_consumed) on_consumed();
    finish_recv(posted, env, payload);
    return;
  }
  // No receive posted yet: buffer the payload, inside the same critical
  // section the miss was observed in. With a backing chunk the store just
  // keeps the reference — the wire slab IS the unexpected buffer, no host
  // bytes move. Without one (legacy/self-send callers) it stages through
  // the slab pool, which counts the copy and — on a cache miss only — the
  // allocation.
  UnexpectedMessage message;
  message.env = env;
  if (backing) {
    message.payload = std::move(backing);
  } else if (!payload.empty()) {
    message.payload = SlabPool::global().stage(payload);
  }
  message.on_consumed = std::move(on_consumed);
  message.charge = charge;
  // stored_ rises before reserved_ falls, so a concurrent admit_eager
  // only ever sees the store at-or-above its true occupancy.
  const std::size_t stored_now =
      stored_.fetch_add(charge, std::memory_order_relaxed) + charge;
  raise_high_water(stored_high_water_, stored_now);
  sub_clamped(reserved_, charge);
  message.available_at =
      node_.clock().advance(static_cast<double>(payload.size()) *
                            sim::kHostCopyUsPerByte);
  sim::trace(message.available_at, node_.id(), sim::TraceCategory::kMatch,
             payload.size(), "unexpected");
  message.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  queues->unexpected.push_back(std::move(message));
  const std::size_t depth =
      unexpected_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  DatapathStats::global().note_match_unexpected_depth(depth);
  bucket_lock.unlock();
  if (rank_lock.owns_lock()) rank_lock.unlock();
  wake_probes_after_append();
}

void RankContext::deliver_rendezvous(const Envelope& env,
                                     RendezvousMatch on_match) {
  std::unique_lock<std::mutex> rank_lock;
  std::unique_lock<std::mutex> bucket_lock;
  KeyQueues* queues = nullptr;
  PostedRecv posted;
  if (take_matching_posted(env, rank_lock, bucket_lock, &queues, &posted)) {
    on_match(env, std::move(posted));
    return;
  }
  UnexpectedMessage message;
  message.env = env;
  message.rendezvous = true;
  message.on_match = std::move(on_match);
  message.available_at = node_.clock().now();
  message.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  queues->unexpected.push_back(std::move(message));
  const std::size_t depth =
      unexpected_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  DatapathStats::global().note_match_unexpected_depth(depth);
  bucket_lock.unlock();
  if (rank_lock.owns_lock()) rank_lock.unlock();
  wake_probes_after_append();
}

// ----------------------------------------------------------------- probe

bool RankContext::iprobe(int context, rank_t source, int tag,
                         MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  UnexpectedHit hit;
  if (source == kAnySource) {
    std::lock_guard<std::mutex> lock(mutex_);
    DatapathStats::global().count_match_rank_lock();
    hit = peek_unexpected(pattern);
  } else {
    hit = peek_unexpected(pattern);
  }
  if (!hit.found) return false;
  node_.clock().sync_to(hit.available_at);
  if (status != nullptr) {
    status->source = hit.env.src;
    status->tag = hit.env.tag;
    status->bytes = hit.env.bytes;
  }
  return true;
}

void RankContext::probe(int context, rank_t source, int tag,
                        rank_t source_global, MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  const usec_t probed_at = node_.clock().now();
  std::unique_lock<std::mutex> lock(mutex_);
  DatapathStats::global().count_match_rank_lock();
  // Registered before the first scan: a delivery that appends after our
  // scan missed it reads a nonzero waiter count and notifies.
  probe_waiters_.fetch_add(1, std::memory_order_release);
  WaiterGuard guard{probe_waiters_};
  for (;;) {
    const UnexpectedHit hit = peek_unexpected(pattern);
    if (hit.found) {
      node_.clock().sync_to(hit.available_at);
      if (status != nullptr) {
        status->source = hit.env.src;
        status->tag = hit.env.tag;
        status->bytes = hit.env.bytes;
      }
      return;
    }
    // Watchdog-aware wait: a probe for a peer that can no longer reach us
    // would otherwise block forever (the unbounded-wait bug). Wildcard
    // probes keep waiting — some peer may still be alive.
    if (peer_unreachable_ && source_global != kInvalidRank &&
        peer_unreachable_(source_global)) {
      node_.clock().sync_to(probed_at + watchdog_horizon_);
      if (status != nullptr) {
        status->source = source;
        status->tag = tag;
        status->bytes = 0;
        status->error = ErrorCode::kTimedOut;
      }
      return;
    }
    if (marcel::on_fiber()) {
      // Park the fiber instead of blocking its shard worker. The
      // predicate consults the failure detector *without* holding the
      // queue lock (the detector may take channel/session locks that
      // delivery paths hold while calling into us).
      lock.unlock();
      marcel::park_until([this, &pattern, source_global] {
        std::function<bool(rank_t)> detector;
        {
          std::lock_guard<std::mutex> scan_lock(mutex_);
          if (peek_unexpected(pattern).found) return true;
          detector = peer_unreachable_;
        }
        return detector != nullptr && source_global != kInvalidRank &&
               detector(source_global);
      });
      lock.lock();
    } else if (peer_unreachable_) {
      unexpected_arrived_.wait_for(lock, std::chrono::milliseconds(2));
    } else {
      unexpected_arrived_.wait(lock);
    }
  }
}

// --------------------------------------------------------- matched probe

bool RankContext::improbe(int context, rank_t source, int tag,
                          MatchedMessage* message, MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  UnexpectedMessage taken;
  bool found = false;
  if (source == kAnySource) {
    std::lock_guard<std::mutex> lock(mutex_);
    DatapathStats::global().count_match_rank_lock();
    found = take_unexpected(pattern, &taken);
  } else {
    found = take_unexpected(pattern, &taken);
  }
  if (!found) return false;
  node_.clock().sync_to(taken.available_at);
  if (status != nullptr) {
    status->source = taken.env.src;
    status->tag = taken.env.tag;
    status->bytes = taken.env.bytes;
  }
  message->message_ = std::move(taken);
  message->valid_ = true;
  return true;
}

void RankContext::mprobe(int context, rank_t source, int tag,
                         rank_t source_global, MatchedMessage* message,
                         MpiStatus* status) {
  PostedRecv pattern;
  pattern.context = context;
  pattern.source = source;
  pattern.tag = tag;
  const usec_t probed_at = node_.clock().now();
  std::unique_lock<std::mutex> lock(mutex_);
  DatapathStats::global().count_match_rank_lock();
  probe_waiters_.fetch_add(1, std::memory_order_release);
  WaiterGuard guard{probe_waiters_};
  for (;;) {
    UnexpectedMessage taken;
    if (take_unexpected(pattern, &taken)) {
      node_.clock().sync_to(taken.available_at);
      if (status != nullptr) {
        status->source = taken.env.src;
        status->tag = taken.env.tag;
        status->bytes = taken.env.bytes;
      }
      message->message_ = std::move(taken);
      message->valid_ = true;
      return;
    }
    if (peer_unreachable_ && source_global != kInvalidRank &&
        peer_unreachable_(source_global)) {
      node_.clock().sync_to(probed_at + watchdog_horizon_);
      if (status != nullptr) {
        status->source = source;
        status->tag = tag;
        status->bytes = 0;
        status->error = ErrorCode::kTimedOut;
      }
      return;
    }
    if (marcel::on_fiber()) {
      lock.unlock();
      marcel::park_until([this, &pattern, source_global] {
        std::function<bool(rank_t)> detector;
        {
          std::lock_guard<std::mutex> scan_lock(mutex_);
          if (peek_unexpected(pattern).found) return true;
          detector = peer_unreachable_;
        }
        return detector != nullptr && source_global != kInvalidRank &&
               detector(source_global);
      });
      lock.lock();
    } else if (peer_unreachable_) {
      unexpected_arrived_.wait_for(lock, std::chrono::milliseconds(2));
    } else {
      unexpected_arrived_.wait(lock);
    }
  }
}

void RankContext::mrecv(MatchedMessage message, PostedRecv posted) {
  MADMPI_CHECK_MSG(message.valid_, "mrecv on an invalid message handle");
  message.valid_ = false;
  consume_unexpected(std::move(message.message_), std::move(posted));
}

// ---------------------------------------------------------------- budget

void RankContext::set_unexpected_budget(std::size_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
}

std::size_t RankContext::unexpected_budget() const {
  return budget_.load(std::memory_order_relaxed);
}

bool RankContext::admit_eager(std::size_t bytes) {
  const std::size_t charge = bytes + kUnexpectedEntryOverhead;
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    reserved_.fetch_add(charge, std::memory_order_relaxed);
    return true;
  }
  std::size_t reserved = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (stored_.load(std::memory_order_relaxed) + reserved + charge >
        budget) {
      eager_refused_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (reserved_.compare_exchange_weak(reserved, reserved + charge,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
}

void RankContext::release_eager_admission(std::size_t bytes) {
  sub_clamped(reserved_, bytes + kUnexpectedEntryOverhead);
}

// -------------------------------------------------------------- watchdog

void RankContext::set_watchdog(usec_t horizon,
                               std::function<bool(rank_t)> unreachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  watchdog_horizon_ = horizon;
  peer_unreachable_ = std::move(unreachable);
}

std::size_t RankContext::cancel_unreachable(ErrorCode code) {
  std::function<bool(rank_t)> unreachable;
  usec_t horizon = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    unreachable = peer_unreachable_;
    horizon = watchdog_horizon_;
  }
  if (!unreachable) return 0;

  // The failure detector may take channel/session locks, and delivery
  // paths hold those while calling into us — so consult it *without*
  // holding the queue locks: snapshot the peers waited on, query the
  // detector unlocked, then re-take the locks to remove victims.
  std::vector<rank_t> peers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto note_peer = [&peers](const PostedRecv& posted) {
      if (posted.source_global == kInvalidRank) return;
      if (std::find(peers.begin(), peers.end(), posted.source_global) ==
          peers.end()) {
        peers.push_back(posted.source_global);
      }
    };
    for (Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
      for (auto& [key, queues] : bucket.keys) {
        for (const PostedRecv& posted : queues.posted) note_peer(posted);
      }
    }
    for (const PostedRecv& posted : wildcard_posted_) note_peer(posted);
  }
  std::vector<rank_t> dead;
  for (rank_t peer : peers) {
    if (unreachable(peer)) dead.push_back(peer);
  }
  if (dead.empty()) return 0;

  std::vector<PostedRecv> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto is_dead = [&dead](const PostedRecv& posted) {
      return posted.source_global != kInvalidRank &&
             std::find(dead.begin(), dead.end(), posted.source_global) !=
                 dead.end();
    };
    for (Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
      for (auto& [key, queues] : bucket.keys) {
        for (auto it = queues.posted.begin(); it != queues.posted.end();) {
          if (is_dead(*it)) {
            victims.push_back(std::move(*it));
            it = queues.posted.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    for (auto it = wildcard_posted_.begin(); it != wildcard_posted_.end();) {
      if (is_dead(*it)) {
        victims.push_back(std::move(*it));
        it = wildcard_posted_.erase(it);
        wildcard_count_.fetch_sub(1, std::memory_order_release);
      } else {
        ++it;
      }
    }
  }
  sub_clamped(posted_count_, victims.size());
  // Buckets iterate in hash order; completing in post order keeps the
  // cancellation sequence (and thus any schedule it perturbs)
  // deterministic, exactly like the flat queue did.
  std::sort(victims.begin(), victims.end(),
            [](const PostedRecv& a, const PostedRecv& b) {
              return a.seq < b.seq;
            });
  for (PostedRecv& posted : victims) {
    // Deterministic stamp: the error is observed `horizon` after the
    // post, not whenever the wall-clock watchdog thread got scheduled.
    node_.clock().bind_lane(posted.posted_at + horizon);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "watchdog-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

usec_t RankContext::min_ft_deadline() const {
  auto* self = const_cast<RankContext*>(this);
  std::lock_guard<std::mutex> lock(mutex_);
  usec_t min_deadline = 0.0;
  const auto consider = [&min_deadline](const PostedRecv& posted) {
    if (posted.ft_deadline_us <= 0.0) return;
    if (min_deadline == 0.0 || posted.ft_deadline_us < min_deadline) {
      min_deadline = posted.ft_deadline_us;
    }
  };
  for (Bucket& bucket : self->buckets_) {
    std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
    for (auto& [key, queues] : bucket.keys) {
      for (const PostedRecv& posted : queues.posted) consider(posted);
    }
  }
  for (const PostedRecv& posted : wildcard_posted_) consider(posted);
  return min_deadline;
}

std::size_t RankContext::cancel_expired(ErrorCode code,
                                        usec_t before_deadline_us) {
  // Only called after a sustained global stall: nothing is advancing
  // virtual time anywhere, so the oldest pending deadline-carrying
  // receives can never complete. Only the cohort at or below
  // `before_deadline_us` is cancelled, stamped at their deadlines (the
  // deadline is the deterministic virtual observation time, not the
  // trigger; wall-clock stall detection is the trigger). Newer deadline
  // receives — operations merely blocked behind the stuck one — are left
  // alone; unsticking the oldest either revives them or earns them their
  // own stall round.
  std::vector<PostedRecv> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto expired = [before_deadline_us](const PostedRecv& posted) {
      return posted.ft_deadline_us > 0.0 &&
             posted.ft_deadline_us <= before_deadline_us;
    };
    for (Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
      for (auto& [key, queues] : bucket.keys) {
        for (auto it = queues.posted.begin(); it != queues.posted.end();) {
          if (expired(*it)) {
            victims.push_back(std::move(*it));
            it = queues.posted.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    for (auto it = wildcard_posted_.begin(); it != wildcard_posted_.end();) {
      if (expired(*it)) {
        victims.push_back(std::move(*it));
        it = wildcard_posted_.erase(it);
        wildcard_count_.fetch_sub(1, std::memory_order_release);
      } else {
        ++it;
      }
    }
  }
  sub_clamped(posted_count_, victims.size());
  std::sort(victims.begin(), victims.end(),
            [](const PostedRecv& a, const PostedRecv& b) {
              return a.seq < b.seq;
            });
  for (PostedRecv& posted : victims) {
    node_.clock().bind_lane(posted.ft_deadline_us);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "ft-deadline-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

std::size_t RankContext::cancel_context(int context, ErrorCode code) {
  std::vector<PostedRecv> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
      for (auto& [key, queues] : bucket.keys) {
        for (auto it = queues.posted.begin(); it != queues.posted.end();) {
          if (it->context == context) {
            victims.push_back(std::move(*it));
            it = queues.posted.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    for (auto it = wildcard_posted_.begin(); it != wildcard_posted_.end();) {
      if (it->context == context) {
        victims.push_back(std::move(*it));
        it = wildcard_posted_.erase(it);
        wildcard_count_.fetch_sub(1, std::memory_order_release);
      } else {
        ++it;
      }
    }
  }
  sub_clamped(posted_count_, victims.size());
  std::sort(victims.begin(), victims.end(),
            [](const PostedRecv& a, const PostedRecv& b) {
              return a.seq < b.seq;
            });
  for (PostedRecv& posted : victims) {
    node_.clock().bind_lane(posted.posted_at);
    MpiStatus status;
    status.source = posted.source;
    status.tag = posted.tag;
    status.bytes = 0;
    status.error = code;
    sim::trace(node_.clock().now(), node_.id(),
               sim::TraceCategory::kComplete, 0, "revoke-cancel");
    posted.request->complete(status);
  }
  return victims.size();
}

void RankContext::notify_waiters() {
  unexpected_arrived_.notify_all();
  marcel::engine_notify();
}

bool RankContext::cancel_posted(const RequestState* request) {
  PostedRecv victim;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto owned = [request](const PostedRecv& posted) {
      return posted.request.get() == request;
    };
    for (auto it = wildcard_posted_.begin();
         !found && it != wildcard_posted_.end(); ++it) {
      if (owned(*it)) {
        victim = std::move(*it);
        wildcard_posted_.erase(it);
        wildcard_count_.fetch_sub(1, std::memory_order_release);
        found = true;
        break;
      }
    }
    for (std::size_t b = 0; !found && b < buckets_.size(); ++b) {
      Bucket& bucket = buckets_[b];
      std::lock_guard<std::mutex> bucket_guard(bucket.mutex);
      for (auto& [key, queues] : bucket.keys) {
        auto it = std::find_if(queues.posted.begin(), queues.posted.end(),
                               owned);
        if (it != queues.posted.end()) {
          victim = std::move(*it);
          queues.posted.erase(it);
          found = true;
          break;
        }
      }
    }
  }
  if (!found) return false;  // already matched: too late
  posted_count_.fetch_sub(1, std::memory_order_relaxed);
  // Completed outside the queue lock (complete() signals the waiter). The
  // canceller is the rank's own thread, so its lane already carries the
  // right virtual time — no deterministic re-stamping needed.
  MpiStatus status;
  status.source = victim.source;
  status.tag = victim.tag;
  status.bytes = 0;
  status.error = ErrorCode::kCancelled;
  sim::trace(node_.clock().now(), node_.id(), sim::TraceCategory::kComplete,
             0, "cancel-recv");
  victim.request->complete(status);
  return true;
}

// --------------------------------------------------------------- windows

void RankContext::register_window(std::uint64_t win_id, WinTarget* target) {
  std::unique_lock<std::shared_mutex> lock(win_mutex_);
  windows_[win_id] = target;
}

void RankContext::unregister_window(std::uint64_t win_id) {
  std::unique_lock<std::shared_mutex> lock(win_mutex_);
  windows_.erase(win_id);
}

WinTarget* RankContext::find_window(std::uint64_t win_id) {
  std::shared_lock<std::shared_mutex> lock(win_mutex_);
  auto it = windows_.find(win_id);
  return it == windows_.end() ? nullptr : it->second;
}

}  // namespace madmpi::mpi
