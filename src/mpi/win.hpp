// MPI-3-style one-sided communication: windows, put/get/accumulate, and
// the fence / lock-unlock synchronization epochs (ROADMAP "RMA over the
// slab pool").
//
// A window is a registered memory region, slab-backed when allocated here
// (Win::allocate) or caller-owned (Win::create). One-sided data travels as
// an EXPRESS control header plus a ChunkRef body the target-side ch_mad
// handler lands directly into window memory — no unexpected-store staging,
// no rendezvous bounce. Completion bookkeeping is a per-origin cumulative
// ledger (see rma.hpp): puts and accumulates are fire-and-forget, and a
// fence or unlock carries the origin's cumulative sent-count, acknowledged
// once the target's ledger catches up.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "common/status.hpp"
#include "mpi/comm.hpp"
#include "mpi/rma.hpp"

namespace madmpi::mpi {

/// Value-semantic window handle (MPI_Win); copies share one per-rank
/// state. All window calls are made on the owning rank's thread.
class Win {
 public:
  Win() = default;  // invalid handle
  bool valid() const { return state_ != nullptr; }

  /// Collective over `comm`: expose a fresh slab-backed region of `bytes`
  /// bytes (registered memory in the RDMA sense; MPI_Win_allocate).
  static Win allocate(const Comm& comm, std::size_t bytes);

  /// Collective: register caller-owned memory (MPI_Win_create). `base`
  /// must stay valid until free().
  static Win create(const Comm& comm, void* base, std::size_t bytes);

  /// This rank's exposed region.
  std::byte* base();
  std::size_t size() const;
  std::uint64_t id() const;

  /// One-sided transfers. `target` is a comm rank; `target_offset` is a
  /// byte offset into the target's window. All three require an open
  /// access epoch towards `target` (a fence epoch, or a held lock) and
  /// validate bounds against the target's window size — violations raise
  /// through the communicator's errhandler.
  Status put(const void* origin, int count, RmaType type, rank_t target,
             std::uint64_t target_offset);
  Status get(void* origin, int count, RmaType type, rank_t target,
             std::uint64_t target_offset);
  Status accumulate(const void* origin, int count, RmaType type, RmaOp op,
                    rank_t target, std::uint64_t target_offset);

  /// Active-target epoch boundary (MPI_Win_fence, collective): completes
  /// every outstanding operation this rank issued (gets included), waits
  /// until every operation targeting this rank has landed, and opens the
  /// next epoch. After the fence, every put issued before it is visible
  /// in its target window.
  Status fence();

  /// Passive-target epoch: lock the window at `target` (kShared admits
  /// concurrent shared holders, kExclusive is solitary; FIFO-fair).
  /// Blocks until granted.
  Status lock(RmaLockType type, rank_t target);

  /// Completes every operation issued under the lock at the target, then
  /// releases it. After unlock() returns, the transferred data is visible
  /// in the target window.
  Status unlock(rank_t target);

  /// Local completion of this rank's outstanding gets without closing the
  /// epoch (MPI_Win_flush_local's useful half: a get's origin buffer is
  /// readable afterwards).
  Status flush_local();

  /// Collective teardown (MPI_Win_free): quiesces all traffic, then
  /// unregisters and releases the slab backing.
  Status free();

  /// Target-side statistics of this rank's window (tests/benches).
  std::uint64_t puts_applied() const;
  std::uint64_t accumulates_applied() const;

 private:
  struct State;
  static Win init(const Comm& comm, void* base, std::size_t bytes,
                  ChunkRef backing);
  Status access_check(rank_t target, std::uint64_t offset,
                      std::uint64_t bytes);
  Status flush_target(rank_t target, RmaKind kind, RmaLockType release);

  std::shared_ptr<State> state_;
};

}  // namespace madmpi::mpi
