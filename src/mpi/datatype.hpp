// MPI datatype engine: primitive types plus the derived-type constructors
// (contiguous / vector / indexed / struct), with pack/unpack to a
// contiguous wire representation. This is the "datatype management,
// heterogeneity" box of the MPICH generic ADI layer (paper Figure 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace madmpi::mpi {

/// Primitive class of a datatype's leaves; drives reduction operators.
enum class TypeClass {
  kInt8,
  kUInt8,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
  kByte,
  kDerived,  // mixed or structured leaves
};

/// Immutable datatype description. Cheap to copy (shared internals).
class Datatype {
 public:
  /// Primitive factories.
  static Datatype int8();
  static Datatype uint8();
  static Datatype int32();
  static Datatype uint32();
  static Datatype int64();
  static Datatype uint64();
  static Datatype float32();
  static Datatype float64();
  static Datatype byte();

  /// `count` consecutive elements of `base`.
  static Datatype contiguous(int count, const Datatype& base);

  /// `count` blocks of `block_length` elements, successive blocks
  /// `stride` elements apart (MPI_Type_vector).
  static Datatype vector(int count, int block_length, int stride,
                         const Datatype& base);

  /// Blocks of varying length at varying element displacements
  /// (MPI_Type_indexed).
  static Datatype indexed(std::span<const int> block_lengths,
                          std::span<const int> displacements,
                          const Datatype& base);

  /// Heterogeneous struct: `block_lengths[i]` elements of `types[i]` at
  /// byte displacement `byte_displacements[i]` (MPI_Type_create_struct).
  static Datatype create_struct(std::span<const int> block_lengths,
                                std::span<const std::ptrdiff_t> byte_displacements,
                                std::span<const Datatype> types);

  /// Override the extent (MPI_Type_create_resized).
  static Datatype resized(const Datatype& base, std::size_t new_extent);

  /// Number of data bytes one element packs to.
  std::size_t size() const;

  /// Memory span one element occupies (distance between consecutive
  /// elements in an array).
  std::size_t extent() const;

  /// True when the element's bytes are contiguous in memory and extent ==
  /// size (pack is a single memcpy).
  bool is_contiguous() const;

  TypeClass type_class() const;
  const std::string& name() const;

  /// Serialize `count` elements starting at `src` into `dst` (which must
  /// hold size()*count bytes).
  void pack(const void* src, int count, std::byte* dst) const;

  /// Inverse of pack.
  void unpack(const std::byte* src, int count, void* dst) const;

  /// The flattened typemap: (byte offset within the element, byte length)
  /// runs, in packing order, each annotated with its primitive width so
  /// heterogeneity conversion can byte-swap correctly. Adjacent runs only
  /// coalesce when their widths match. Exposed for tests, the reduction
  /// engine and the endianness converter.
  struct Segment {
    std::size_t offset;
    std::size_t length;
    std::size_t width = 1;  // primitive element width within the run
  };
  const std::vector<Segment>& segments() const;

  /// Reverse the byte order of every primitive inside `count` packed
  /// elements of this type, in place on the wire representation. This is
  /// the "heterogeneity management" conversion of the ADI (paper Figure
  /// 1): messages travel in the sender's byte order and the receiver makes
  /// them right.
  void swap_packed(std::byte* wire, int count) const;

  /// Byte-length variant of swap_packed for payloads that are not a whole
  /// number of elements (a truncated delivery, a ragged eager tail): swaps
  /// every complete element, then the complete primitives of the partial
  /// trailing element, then best-effort reverses the final partial
  /// primitive so no wire-order bytes ever reach the user buffer.
  void swap_packed_bytes(std::byte* wire, std::size_t bytes) const;

  bool operator==(const Datatype& other) const { return impl_ == other.impl_; }

  /// Internal representation; public so the implementation file's free
  /// helpers can build instances, but opaque to library users.
  struct Impl;

 private:
  explicit Datatype(std::shared_ptr<const Impl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<const Impl> impl_;
};

}  // namespace madmpi::mpi
