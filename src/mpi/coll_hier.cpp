// The hierarchical collective engine (tentpole of the collectives PR).
//
// The flat MPICH algorithms treat every rank pair as equal; on a
// Madeleine-style multi-protocol cluster that sends the same byte across
// TCP many times. The hierarchy walks the topology digest instead:
//
//   level 1: one representative per cluster crosses the interconnect once
//   level 2: island leaders fan out/in within each cluster (SCI/BIP)
//   level 3: ranks fan out/in within each island (shared memory)
//
// Every level is the same binomial tree over an explicit member list, so
// the whole engine reduces to tree_bcast_members/tree_reduce_members plus
// the list construction (with the user's root swapped to the front of its
// island, cluster and rep lists, so data originates at the root without an
// extra hop).
//
// kAuto resolution order: explicit config < tuner decision table < static
// heuristic. On a single-island topology the heuristic resolves to the
// historical flat algorithms, keeping existing sessions bit-identical.
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mpi/coll_offload.hpp"
#include "mpi/comm.hpp"
#include "mpi/comm_shared.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::mpi {

namespace {

// Tags mirror collectives.cpp's blocking-collective tag space (1..8);
// blocking collectives on one communicator are serialized, so sharing
// values with the flat algorithms is safe.
constexpr int kHierBarrierTag = 1;
constexpr int kHierBcastTag = 2;
constexpr int kHierReduceTag = 3;

bool contains(const std::vector<rank_t>& members, rank_t rank) {
  return std::find(members.begin(), members.end(), rank) != members.end();
}

int tree_depth(int n) {
  int depth = 0;
  while ((1 << depth) < n) ++depth;
  return depth;
}

std::string env_lower(const char* name) {
  const char* value = std::getenv(name);
  if (!value) return {};
  std::string out(value);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

// --- Names, env defaults, decision-table text form ----------------------

const char* algorithm_name(AllreduceAlgorithm a) {
  switch (a) {
    case AllreduceAlgorithm::kReduceBcast: return "reduce_bcast";
    case AllreduceAlgorithm::kRecursiveDoubling: return "rdbl";
    case AllreduceAlgorithm::kRing: return "ring";
    case AllreduceAlgorithm::kHierarchical: return "hier";
    case AllreduceAlgorithm::kAuto: return "auto";
  }
  return "?";
}

const char* algorithm_name(BcastAlgorithm a) {
  switch (a) {
    case BcastAlgorithm::kBinomial: return "binomial";
    case BcastAlgorithm::kLinear: return "linear";
    case BcastAlgorithm::kHierarchical: return "hier";
    case BcastAlgorithm::kOffload: return "offload";
    case BcastAlgorithm::kAuto: return "auto";
  }
  return "?";
}

const char* algorithm_name(BarrierAlgorithm a) {
  switch (a) {
    case BarrierAlgorithm::kDissemination: return "dissemination";
    case BarrierAlgorithm::kHierarchical: return "hier";
    case BarrierAlgorithm::kOffload: return "offload";
    case BarrierAlgorithm::kAuto: return "auto";
  }
  return "?";
}

AllreduceAlgorithm allreduce_algorithm_default() {
  const std::string v = env_lower("MADMPI_COLL_ALLREDUCE");
  if (v == "reduce_bcast") return AllreduceAlgorithm::kReduceBcast;
  if (v == "rdbl") return AllreduceAlgorithm::kRecursiveDoubling;
  if (v == "ring") return AllreduceAlgorithm::kRing;
  if (v == "hier") return AllreduceAlgorithm::kHierarchical;
  return AllreduceAlgorithm::kAuto;
}

BcastAlgorithm bcast_algorithm_default() {
  const std::string v = env_lower("MADMPI_COLL_BCAST");
  if (v == "binomial") return BcastAlgorithm::kBinomial;
  if (v == "linear") return BcastAlgorithm::kLinear;
  if (v == "hier") return BcastAlgorithm::kHierarchical;
  if (v == "offload") return BcastAlgorithm::kOffload;
  return BcastAlgorithm::kAuto;
}

BarrierAlgorithm barrier_algorithm_default() {
  const std::string v = env_lower("MADMPI_COLL_BARRIER");
  if (v == "dissemination") return BarrierAlgorithm::kDissemination;
  if (v == "hier") return BarrierAlgorithm::kHierarchical;
  if (v == "offload") return BarrierAlgorithm::kOffload;
  return BarrierAlgorithm::kAuto;
}

bool coll_offload_default() {
  const std::string v = env_lower("MADMPI_COLL_OFFLOAD");
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

std::string CollDecisionTable::serialize() const {
  if (!valid) return "untuned";
  std::string out;
  out += "bcast=";
  out += algorithm_name(bcast_small);
  out += "<";
  out += std::to_string(switch_bytes);
  out += "<=";
  out += algorithm_name(bcast_large);
  out += " allreduce=";
  out += algorithm_name(allreduce_small);
  out += "<";
  out += std::to_string(switch_bytes);
  out += "<=";
  out += algorithm_name(allreduce_large);
  out += " barrier=";
  out += algorithm_name(barrier);
  return out;
}

// --- Topology digest and kAuto resolution -------------------------------

const CollTopo& Comm::coll_topo() const {
  std::lock_guard<std::mutex> lock(shared_->seq_mutex);
  if (!shared_->topo) {
    shared_->topo = build_coll_topo(*shared_->runtime, shared_->group);
  }
  return *shared_->topo;
}

BcastAlgorithm Comm::resolve_bcast(std::size_t bytes) const {
  const CollectiveConfig config = collective_config();
  // FT mode routes through the survivable binomial tree before any
  // selector applies — the explicit flat fallback the FT guard test pins.
  if (config.fault_tolerant) return BcastAlgorithm::kBinomial;
  const CollTopo& topo = coll_topo();
  BcastAlgorithm algorithm = config.bcast;
  if (algorithm == BcastAlgorithm::kAuto) {
    const CollDecisionTable table = shared_->runtime->coll_decision_table();
    if (table.valid) {
      algorithm = bytes < table.switch_bytes ? table.bcast_small
                                             : table.bcast_large;
    } else {
      algorithm = topo.single_island() ? BcastAlgorithm::kBinomial
                                       : BcastAlgorithm::kHierarchical;
    }
  }
  // Degrade gracefully: the offload needs a homogeneous offload-capable
  // leader fabric, and the hierarchy needs more than one island.
  if (algorithm == BcastAlgorithm::kOffload &&
      !(topo.offload_capable && config.offload)) {
    algorithm = BcastAlgorithm::kHierarchical;
  }
  if (algorithm == BcastAlgorithm::kHierarchical && topo.single_island()) {
    algorithm = BcastAlgorithm::kBinomial;
  }
  return algorithm;
}

AllreduceAlgorithm Comm::resolve_allreduce(std::size_t bytes) const {
  const CollectiveConfig config = collective_config();
  if (config.fault_tolerant) return AllreduceAlgorithm::kReduceBcast;
  const CollTopo& topo = coll_topo();
  AllreduceAlgorithm algorithm = config.allreduce;
  if (algorithm == AllreduceAlgorithm::kAuto) {
    const CollDecisionTable table = shared_->runtime->coll_decision_table();
    if (table.valid) {
      algorithm = bytes < table.switch_bytes ? table.allreduce_small
                                             : table.allreduce_large;
    } else {
      algorithm = topo.single_island() ? AllreduceAlgorithm::kReduceBcast
                                       : AllreduceAlgorithm::kHierarchical;
    }
  }
  if (algorithm == AllreduceAlgorithm::kHierarchical &&
      topo.single_island()) {
    algorithm = AllreduceAlgorithm::kReduceBcast;
  }
  return algorithm;
}

BarrierAlgorithm Comm::resolve_barrier() const {
  const CollectiveConfig config = collective_config();
  if (config.fault_tolerant) return BarrierAlgorithm::kDissemination;
  const CollTopo& topo = coll_topo();
  BarrierAlgorithm algorithm = config.barrier;
  if (algorithm == BarrierAlgorithm::kAuto) {
    const CollDecisionTable table = shared_->runtime->coll_decision_table();
    if (table.valid) {
      algorithm = table.barrier;
    } else if (topo.single_island()) {
      algorithm = BarrierAlgorithm::kDissemination;
    } else if (topo.offload_capable && config.offload) {
      algorithm = BarrierAlgorithm::kOffload;
    } else {
      algorithm = BarrierAlgorithm::kHierarchical;
    }
  }
  if (algorithm == BarrierAlgorithm::kOffload &&
      !(topo.offload_capable && config.offload)) {
    algorithm = BarrierAlgorithm::kHierarchical;
  }
  if (algorithm == BarrierAlgorithm::kHierarchical && topo.single_island()) {
    algorithm = BarrierAlgorithm::kDissemination;
  }
  return algorithm;
}

bool Comm::use_hier_reduce(std::size_t bytes) const {
  return resolve_allreduce(bytes) == AllreduceAlgorithm::kHierarchical;
}

// --- Tree primitives over explicit member lists -------------------------

void Comm::tree_bcast_members(const std::vector<rank_t>& members,
                              std::byte* wire, std::size_t bytes, int tag) {
  const int n = static_cast<int>(members.size());
  if (n <= 1) return;
  const int me = static_cast<int>(
      std::find(members.begin(), members.end(), rank_) - members.begin());
  MADMPI_CHECK_MSG(me < n, "rank not in its tree member list");
  int mask = 1;
  while (mask < n) {
    if (me & mask) {
      coll_recv(wire, bytes, members[static_cast<std::size_t>(me & ~mask)],
                tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  std::vector<rank_t> children;
  while (mask > 0) {
    if (me + mask < n) {
      children.push_back(members[static_cast<std::size_t>(me + mask)]);
    }
    mask >>= 1;
  }
  coll_send_multi(children, wire, bytes, tag);
}

void Comm::linear_bcast_members(const std::vector<rank_t>& members,
                                std::byte* wire, std::size_t bytes,
                                int tag) {
  // Flat fan-out from members[0]: used across the interconnect level,
  // where the member count is the cluster count (single digits) and every
  // hop pays a full payload serialization on the slowest wire — a
  // depth-log tree charges depth × wire time on its longest path, the
  // concurrent flat fan-out charges one.
  if (members.size() <= 1) return;
  if (rank_ == members.front()) {
    const std::vector<rank_t> children(members.begin() + 1, members.end());
    coll_send_multi(children, wire, bytes, tag);
  } else {
    coll_recv(wire, bytes, members.front(), tag);
  }
}

void Comm::tree_reduce_members(const std::vector<rank_t>& members,
                               std::byte* accum, std::size_t bytes, int count,
                               const Datatype& type, const Op* op, int tag) {
  const int n = static_cast<int>(members.size());
  if (n <= 1) return;
  const int me = static_cast<int>(
      std::find(members.begin(), members.end(), rank_) - members.begin());
  MADMPI_CHECK_MSG(me < n, "rank not in its tree member list");
  std::vector<std::byte> incoming(bytes);
  for (int mask = 1; mask < n; mask <<= 1) {
    if (me & mask) {
      coll_send(accum, bytes, members[static_cast<std::size_t>(me & ~mask)],
                tag);
      return;
    }
    const int src = me | mask;
    if (src < n) {
      coll_recv(incoming.data(), bytes,
                members[static_cast<std::size_t>(src)], tag);
      if (op != nullptr && bytes > 0) {
        op->apply(incoming.data(), accum, count, type);
        my_node().clock().advance(static_cast<double>(bytes) *
                                  sim::kHostCopyUsPerByte);
      }
    }
  }
}

// --- Hierarchical algorithms --------------------------------------------
//
// Member lists come from coll_topo.cpp's re-rooted constructors
// (rep_list / cluster_leader_list / island_member_list).

void Comm::hier_bcast(std::byte* wire, std::size_t bytes, rank_t root) {
  const CollTopo& topo = coll_topo();
  const int root_island = topo.island_of[static_cast<std::size_t>(root)];
  const int root_cluster =
      topo.islands[static_cast<std::size_t>(root_island)].cluster;
  const int my_island = topo.island_of[static_cast<std::size_t>(rank_)];
  const int my_cluster =
      topo.islands[static_cast<std::size_t>(my_island)].cluster;

  // Level 1: effective reps cross the interconnect, flat fan-out (the
  // deepest path pays one interconnect serialization, not log2(reps)).
  if (!topo.single_cluster()) {
    const std::vector<rank_t> reps = rep_list(topo, root_cluster, root);
    if (contains(reps, rank_)) {
      linear_bcast_members(reps, wire, bytes, kHierBcastTag);
    }
  }
  // Level 2: island leaders fan out within each cluster.
  {
    const std::vector<rank_t> leaders =
        cluster_leader_list(topo, my_cluster, root_island, root);
    if (contains(leaders, rank_)) {
      tree_bcast_members(leaders, wire, bytes, kHierBcastTag);
    }
  }
  // Level 3: release within the island (everyone participates).
  tree_bcast_members(island_member_list(topo, my_island, root_island, root),
                     wire, bytes, kHierBcastTag);
}

void Comm::hier_reduce(std::byte* accum, std::size_t bytes, int count,
                       const Datatype& type, const Op& op, rank_t root) {
  const CollTopo& topo = coll_topo();
  const int root_island = topo.island_of[static_cast<std::size_t>(root)];
  const int root_cluster =
      topo.islands[static_cast<std::size_t>(root_island)].cluster;
  const int my_island = topo.island_of[static_cast<std::size_t>(rank_)];
  const int my_cluster =
      topo.islands[static_cast<std::size_t>(my_island)].cluster;

  // The exact mirror of hier_bcast, levels reversed: island fan-in, then
  // cluster fan-in to the effective rep, then reps fan in to the root.
  tree_reduce_members(island_member_list(topo, my_island, root_island, root),
                      accum, bytes, count, type, &op, kHierReduceTag);
  {
    const std::vector<rank_t> leaders =
        cluster_leader_list(topo, my_cluster, root_island, root);
    if (contains(leaders, rank_)) {
      tree_reduce_members(leaders, accum, bytes, count, type, &op,
                          kHierReduceTag);
    }
  }
  if (!topo.single_cluster()) {
    const std::vector<rank_t> reps = rep_list(topo, root_cluster, root);
    if (contains(reps, rank_)) {
      tree_reduce_members(reps, accum, bytes, count, type, &op,
                          kHierReduceTag);
    }
  }
}

void Comm::hier_allreduce(void* recv_buf, int count, const Datatype& type,
                          const Op& op) {
  // Reduce to the natural root (cluster 0's rep), then release along the
  // same trees. The caller already seeded recv_buf with this rank's
  // contribution.
  const std::size_t bytes = type.size() * static_cast<std::size_t>(count);
  auto* accum = static_cast<std::byte*>(recv_buf);
  const rank_t root = coll_topo().rep_of_cluster(0);
  hier_reduce(accum, bytes, count, type, op, root);
  hier_bcast(accum, bytes, root);
}

void Comm::hier_barrier() {
  // Zero-byte fan-in to cluster 0's rep, zero-byte release back out: the
  // reduce/bcast trees with no payload and no operator.
  const CollTopo& topo = coll_topo();
  const rank_t root = topo.rep_of_cluster(0);
  hier_reduce(nullptr, 0, 0, Datatype::byte(), Op::max(), root);
  hier_bcast(nullptr, 0, root);
}

// --- Modeled NIC offload ------------------------------------------------

void Comm::offload_barrier() {
  const CollTopo& topo = coll_topo();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(
           static_cast<std::uint32_t>(shared_->context))
       << 32) |
      (shared_->next_offload_seq(rank_) & 0xffffffffu);
  const int my_island = topo.island_of[static_cast<std::size_t>(rank_)];
  const int leaders = static_cast<int>(topo.islands.size());

  // Host side: island fan-in to the leader, exactly like hier_barrier's
  // innermost level.
  const auto& members =
      topo.islands[static_cast<std::size_t>(my_island)].members;
  tree_reduce_members(members, nullptr, 0, 0, Datatype::byte(), nullptr,
                      kHierBarrierTag);

  if (rank_ == topo.leader_of_island(my_island)) {
    // NIC side: post the combine descriptor, let the modeled firmware
    // tree run (up and down: 2 * depth hops), land the notification.
    sim::VirtualClock& clock = my_node().clock();
    clock.advance(topo.offload_post_us);
    const usec_t tree_us =
        2.0 * tree_depth(leaders) * topo.offload_hop_us +
        topo.offload_notify_us;
    const usec_t done = shared_->runtime->coll_offload_board().barrier(
        key, leaders, clock.now(), tree_us);
    clock.sync_to(done);
  }

  // Release within the island.
  tree_bcast_members(members, nullptr, 0, kHierBarrierTag);
}

void Comm::offload_bcast(std::byte* wire, std::size_t bytes, rank_t root) {
  const CollTopo& topo = coll_topo();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(
           static_cast<std::uint32_t>(shared_->context))
       << 32) |
      (shared_->next_offload_seq(rank_) & 0xffffffffu);
  const int root_island = topo.island_of[static_cast<std::size_t>(root)];
  const int my_island = topo.island_of[static_cast<std::size_t>(rank_)];
  const int leaders = static_cast<int>(topo.islands.size());

  // The root stands in for its island's leader (no staging hop), so the
  // NIC tree spans {root} ∪ {other islands' leaders}.
  const rank_t my_leader = my_island == root_island
                               ? root
                               : topo.leader_of_island(my_island);
  sim::VirtualClock& clock = my_node().clock();
  if (rank_ == my_leader) {
    if (rank_ == root) {
      // DMA the payload into the NIC and fire the forward tree. The root
      // returns immediately — a bcast is not a barrier.
      clock.advance(topo.offload_post_us +
                    static_cast<double>(bytes) / topo.offload_bytes_per_us);
      shared_->runtime->coll_offload_board().bcast_put(key, leaders,
                                                       clock.now(), wire,
                                                       bytes);
    } else {
      // Leaves complete at max(own post, root post + pipeline latency):
      // they never wait on sibling leaves.
      clock.advance(topo.offload_post_us);
      const usec_t tree_us =
          tree_depth(leaders) * topo.offload_hop_us +
          static_cast<double>(bytes) / topo.offload_bytes_per_us +
          topo.offload_notify_us;
      const usec_t done = shared_->runtime->coll_offload_board().bcast_get(
          key, leaders, clock.now(), tree_us, wire, bytes);
      clock.sync_to(done);
      clock.advance(static_cast<double>(bytes) * sim::kHostCopyUsPerByte);
    }
  }

  // Host side: release within the island (root's island re-rooted at it).
  tree_bcast_members(island_member_list(topo, my_island, root_island, root),
                     wire, bytes, kHierBcastTag);
}

}  // namespace madmpi::mpi
