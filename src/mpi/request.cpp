#include "mpi/request.hpp"

#include <thread>
#include <vector>

#include "marcel/engine.hpp"

namespace madmpi::mpi {

// The multi-request waits poll with test(): completion is signalled
// through per-request semaphores, so a combined blocking wait would need a
// shared condition; polling with a cooperative yield keeps the
// implementation simple and, with virtual time, costs nothing in measured
// results. Under the sharded engine the yield reschedules the fiber so
// shard siblings (including the peer that will complete the request) keep
// making progress. Completed requests are invalidated (set to a null
// handle), mirroring how the MPI calls set MPI_REQUEST_NULL.

std::size_t Request::wait_any(std::span<Request> requests,
                              MpiStatus* status) {
  for (;;) {
    const std::size_t index = test_any(requests, status);
    if (index != npos) return index;
    bool any_valid = false;
    for (const auto& request : requests) {
      if (request.valid()) {
        any_valid = true;
        break;
      }
    }
    MADMPI_CHECK_MSG(any_valid, "wait_any on all-null requests");
    marcel::cooperative_yield();
  }
}

std::size_t Request::test_any(std::span<Request> requests,
                              MpiStatus* status) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].valid()) continue;
    if (requests[i].test(status)) {
      requests[i] = Request();  // MPI_REQUEST_NULL
      return i;
    }
  }
  return npos;
}

bool Request::test_all(std::span<Request> requests) {
  for (auto& request : requests) {
    if (request.valid() && !request.state()->completed()) return false;
  }
  for (auto& request : requests) {
    if (request.valid()) {
      request.test(nullptr);
      request = Request();
    }
  }
  return true;
}

std::vector<std::size_t> Request::wait_some(std::span<Request> requests) {
  std::vector<std::size_t> done;
  for (;;) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!requests[i].valid()) continue;
      if (requests[i].test(nullptr)) {
        requests[i] = Request();
        done.push_back(i);
      }
    }
    if (!done.empty()) return done;
    bool any_valid = false;
    for (const auto& request : requests) {
      if (request.valid()) {
        any_valid = true;
        break;
      }
    }
    MADMPI_CHECK_MSG(any_valid, "wait_some on all-null requests");
    marcel::cooperative_yield();
  }
}

}  // namespace madmpi::mpi
