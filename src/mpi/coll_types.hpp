// Collective algorithm selection types, shared by the communicator layer
// (which consumes them) and the runtime (which hosts the session-wide
// auto-tuner decision table). Kept free of comm.hpp/runtime.hpp includes so
// both can include this header.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace madmpi::mpi {

/// Collective algorithm selection (settable per communicator; must be set
/// identically on every rank, like any collective tuning knob). kAuto
/// resolves per call from the communicator's topology digest, the tuner's
/// decision table (when MADMPI_COLL_TUNE produced one) and the message
/// size — on a single-island topology it resolves to the historical flat
/// algorithm, so existing single-node sessions behave bit-identically.
enum class AllreduceAlgorithm {
  kReduceBcast,        // binomial reduce to 0 + binomial bcast
  kRecursiveDoubling,  // log2(p) exchange-and-combine rounds
  kRing,               // reduce-scatter + allgather rings (bandwidth-optimal)
  kHierarchical,       // island reduce -> cluster tree -> rep exchange
  kAuto,               // resolved per call (default)
};

enum class BcastAlgorithm {
  kBinomial,      // log2(p) tree over flat comm ranks
  kLinear,        // root sends to every rank (baseline for the ablation)
  kHierarchical,  // rep tree -> cluster trees -> island release
  kOffload,       // NIC-side forward tree among island leaders
  kAuto,          // resolved per call (default)
};

enum class BarrierAlgorithm {
  kDissemination,  // log2(p) rounds of zero-byte exchanges, flat
  kHierarchical,   // island fan-in -> cluster -> rep dissemination -> release
  kOffload,        // NIC-side combine/release tree among island leaders
  kAuto,           // resolved per call (default)
};

const char* algorithm_name(AllreduceAlgorithm a);
const char* algorithm_name(BcastAlgorithm a);
const char* algorithm_name(BarrierAlgorithm a);

/// Environment defaults for CollectiveConfig (README knob table):
/// MADMPI_COLL_BCAST = binomial|linear|hier|offload|auto
/// MADMPI_COLL_ALLREDUCE = reduce_bcast|rdbl|ring|hier|auto
/// MADMPI_COLL_BARRIER = dissemination|hier|offload|auto
/// MADMPI_COLL_OFFLOAD = 0|1 (whether kAuto may elect the NIC offload)
AllreduceAlgorithm allreduce_algorithm_default();
BcastAlgorithm bcast_algorithm_default();
BarrierAlgorithm barrier_algorithm_default();
bool coll_offload_default();

/// The auto-tuner's verdict: one algorithm per collective per size class,
/// split at switch_bytes — the same shape as the eager/rendezvous switch
/// point, applied one layer up. Written once at session setup by
/// tune_collectives() (MADMPI_COLL_TUNE), consulted by kAuto resolution.
/// Trivially copyable on purpose: the tuner broadcasts it over the wire.
struct CollDecisionTable {
  bool valid = false;
  std::size_t switch_bytes = 4096;
  BcastAlgorithm bcast_small = BcastAlgorithm::kBinomial;
  BcastAlgorithm bcast_large = BcastAlgorithm::kBinomial;
  AllreduceAlgorithm allreduce_small = AllreduceAlgorithm::kReduceBcast;
  AllreduceAlgorithm allreduce_large = AllreduceAlgorithm::kReduceBcast;
  BarrierAlgorithm barrier = BarrierAlgorithm::kDissemination;

  /// Canonical one-line text form ("bcast=binomial<4096<=hier ..."):
  /// the tuner-smoke CI step asserts this string is identical across runs
  /// with the same MADMPI_SCHED_SEED.
  std::string serialize() const;
};

}  // namespace madmpi::mpi
