#include "mad/forwarder.hpp"

#include <atomic>

#include "common/log.hpp"

namespace madmpi::mad {

Packing begin_forward_packing(ChannelEndpoint& endpoint, node_id_t gateway,
                              node_id_t final_dst) {
  Packing packing = endpoint.begin_packing(gateway);
  ForwardHeader header;
  header.origin = endpoint.node_id();
  header.final_dst = final_dst;
  header.hops = 0;
  packing.pack(&header, sizeof header, SendMode::kSafer, RecvMode::kExpress);
  return packing;
}

ForwardHeader read_forward_header(Unpacking& unpacking) {
  ForwardHeader header;
  unpacking.unpack(&header, sizeof header, SendMode::kSafer,
                   RecvMode::kExpress);
  return header;
}

Forwarder::Forwarder(sim::Node& gateway_node)
    : gateway_(gateway_node), poll_server_(gateway_node) {}

Forwarder::~Forwarder() { stop(); }

void Forwarder::add_ingress(ChannelEndpoint* endpoint) {
  MADMPI_CHECK_MSG(!started_, "add_ingress after start()");
  MADMPI_CHECK_MSG(endpoint->node_id() == gateway_.id(),
                   "ingress endpoint not hosted on the gateway node");
  ingress_.push_back(endpoint);
}

void Forwarder::add_route(node_id_t dst, ChannelEndpoint* out,
                          node_id_t next_hop) {
  MADMPI_CHECK_MSG(out->node_id() == gateway_.id(),
                   "route egress not hosted on the gateway node");
  routes_[dst] = Route{out, next_hop};
}

void Forwarder::start() {
  MADMPI_CHECK_MSG(!started_, "Forwarder started twice");
  started_ = true;
  for (ChannelEndpoint* endpoint : ingress_) {
    poll_server_.add_poller(
        endpoint->channel().id(), endpoint->channel().poll_cost(),
        [this, endpoint] {
          auto incoming = endpoint->begin_unpacking();
          if (!incoming) return false;
          poll_server_.charge_wakeup(endpoint->channel().id());
          relay(std::move(*incoming));
          return true;
        });
  }
}

void Forwarder::stop() {
  if (!started_) return;
  // Anything relayed past this point is teardown drain: keep its wakeups
  // out of the process-wide datapath counters.
  poll_server_.begin_drain();
  poll_server_.join();
  started_ = false;
}

void Forwarder::relay(Unpacking incoming) {
  ForwardHeader header = read_forward_header(incoming);
  auto route = routes_.find(header.final_dst);
  MADMPI_CHECK_MSG(route != routes_.end(),
                   "no forwarding route for destination node");
  const Route& hop = route->second;
  ++header.hops;

  // The routing header stays in front on every hop — intermediate gateways
  // route on it, and the final receiver recovers the true origin from it.
  Packing out = hop.out->begin_packing(hop.next_hop);
  out.pack(&header, sizeof header, SendMode::kSafer, RecvMode::kExpress);

  while (auto block = incoming.drain_block()) {
    // Drained chunks repack by reference: the relay never copies payload
    // bytes between its ingress and egress channels.
    out.pack_chunk(block->chunk, SendMode::kSafer,
                   block->express ? RecvMode::kExpress : RecvMode::kCheaper);
  }
  incoming.end_unpacking();
  ++forwarded_;  // counted before the flush so receivers observe >= their
                 // own message count once it arrives
  out.end_packing();
  MADMPI_LOG_DEBUG("fwd", "relayed message origin=%d dst=%d hops=%u",
                   header.origin, header.final_dst, header.hops);
}

}  // namespace madmpi::mad
