// Gateway forwarding across heterogeneous networks.
//
// The paper's prototype requires all nodes to be pairwise connected; its
// conclusion announces "a low-level high-performance forwarding mechanism
// within Madeleine allowing messages to cross gateway nodes". This module
// implements that mechanism: dedicated forwarding channels carry messages
// whose first EXPRESS block is a routing header; a Forwarder service on the
// gateway node relays the remaining blocks onto the next channel, block
// structure and EXPRESS/CHEAPER semantics preserved, without the payload
// ever reaching an application buffer on the gateway.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mad/channel.hpp"
#include "marcel/poll_server.hpp"

namespace madmpi::mad {

/// Routing header prepended (EXPRESS) to every forwarded message.
struct ForwardHeader {
  node_id_t origin = kInvalidNode;     // first sender
  node_id_t final_dst = kInvalidNode;  // ultimate receiver
  std::uint16_t hops = 0;              // incremented per gateway
};

/// Begin a forwarded message: packs the routing header towards `gateway`.
/// The caller then packs payload blocks and calls end_packing() as usual.
Packing begin_forward_packing(ChannelEndpoint& endpoint, node_id_t gateway,
                              node_id_t final_dst);

/// Receive side of a forwarded message that has reached its final node:
/// unpacks and returns the routing header; the caller then unpacks the
/// payload blocks normally.
ForwardHeader read_forward_header(Unpacking& unpacking);

/// The relay service running on a gateway node.
class Forwarder {
 public:
  /// `gateway` must be a member of every channel added later.
  Forwarder(sim::Node& gateway_node);
  ~Forwarder();

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  /// Listen for forwardable messages on this channel endpoint.
  void add_ingress(ChannelEndpoint* endpoint);

  /// Declare how to reach `dst`: send on `out` towards `next_hop`
  /// (next_hop == dst for the final hop).
  void add_route(node_id_t dst, ChannelEndpoint* out, node_id_t next_hop);

  /// Spawn one relay thread per ingress. Threads exit when their ingress
  /// channel closes.
  void start();

  /// Join the relay threads (close the ingress channels first).
  void stop();

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  struct Route {
    ChannelEndpoint* out;
    node_id_t next_hop;
  };

  void relay(Unpacking incoming);

  sim::Node& gateway_;
  marcel::PollServer poll_server_;
  std::vector<ChannelEndpoint*> ingress_;
  std::map<node_id_t, Route> routes_;
  std::atomic<std::uint64_t> forwarded_{0};
  bool started_ = false;
};

}  // namespace madmpi::mad
