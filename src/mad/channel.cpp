#include "mad/channel.hpp"

#include <algorithm>
#include <cstring>

#include "common/datapath_stats.hpp"
#include "common/log.hpp"

namespace madmpi::mad {

// ---------------------------------------------------------------- Packing

Packing::Packing(ChannelEndpoint* endpoint, node_id_t remote,
                 std::unique_lock<std::mutex> connection_lock,
                 net::DeliveryMode delivery)
    : endpoint_(endpoint),
      remote_(remote),
      delivery_(delivery),
      connection_lock_(std::move(connection_lock)),
      control_(endpoint->net_->pool(), endpoint->driver().slab_reserve()) {}

Packing::Packing(Packing&& other) noexcept
    : endpoint_(other.endpoint_),
      remote_(other.remote_),
      delivery_(other.delivery_),
      connection_lock_(std::move(other.connection_lock_)),
      control_(std::move(other.control_)),
      separate_(std::move(other.separate_)),
      express_prefix_(other.express_prefix_),
      split_marked_(other.split_marked_),
      blocks_packed_(other.blocks_packed_),
      ended_(other.ended_) {
  other.ended_ = true;  // moved-from shell must not trip the dtor check
}

Packing::~Packing() {
  MADMPI_CHECK_MSG(ended_, "Packing destroyed without end_packing()");
}

void Packing::pack(const void* data, std::size_t size, SendMode send_mode,
                   RecvMode recv_mode) {
  MADMPI_CHECK_MSG(!ended_, "pack() after end_packing()");
  MADMPI_CHECK_MSG(data != nullptr || size == 0, "null block with size > 0");

  const sim::LinkCostModel& model = endpoint_->model();
  sim::VirtualClock& clock = endpoint_->node().clock();

  // Bookkeeping cost: the first pack is cheap; every further pack pays the
  // sender share of the protocol's per-block transaction overhead (the
  // "significant overhead" per pack operation measured in Section 5.1).
  if (blocks_packed_ == 0) {
    clock.advance(kPackFixedUs);
  } else {
    clock.advance(kPackFixedUs + kSenderBlockShare * model.per_block_us);
  }
  ++blocks_packed_;

  BlockRecord record;
  record.length = static_cast<std::uint32_t>(size);
  record.express = (recv_mode == RecvMode::kExpress);

  // EXPRESS data must travel with the control portion so it is available
  // as soon as the receiver unpacks it. CHEAPER data follows the driver's
  // preference for its size.
  net::BlockPlan plan;
  if (record.express) {
    plan.aggregate = true;
  } else {
    plan = endpoint_->driver().plan_block(size);
  }

  if (plan.aggregate) {
    record.placement = BlockPlacement::kInline;
    // The EXPRESS/CHEAPER split point: control bytes written before the
    // first non-express inline block form the EXPRESS prefix chunk.
    if (!split_marked_ && !record.express) {
      express_prefix_ = control_.position();
      split_marked_ = true;
    }
    write_record(control_, record);
    control_.append(data, size);
    // Real-datapath accounting: user payload staged into the control
    // buffer. EXPRESS header parsing is fixed-size bookkeeping present on
    // every path, so it is excluded from the bytes-copied metric.
    if (!record.express) count_real_copy(size);
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
    return;
  }

  record.placement = BlockPlacement::kSeparate;
  record.zero_copy = plan.zero_copy;
  write_record(control_, record);

  // Separate blocks stage into a pooled chunk at pack time. This makes
  // every send mode as safe as kSafer (the caller's buffer is free on
  // return) while the chunk itself travels by reference through the
  // transport, retransmits and all. Only kSafer charges the safety copy
  // in virtual time — for kLater/kCheaper the stage models the DMA
  // pipeline that overlapped with the wire in the old direct-span path.
  ChunkRef chunk = endpoint_->net_->pool().stage(
      byte_span{static_cast<const std::byte*>(data), size});
  if (send_mode == SendMode::kSafer) {
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
  }
  separate_.push_back({std::move(chunk), plan.zero_copy});
}

void Packing::pack_chunk(const ChunkRef& chunk, SendMode send_mode,
                         RecvMode recv_mode) {
  MADMPI_CHECK_MSG(!ended_, "pack_chunk() after end_packing()");
  const std::size_t size = chunk.size();

  const sim::LinkCostModel& model = endpoint_->model();
  sim::VirtualClock& clock = endpoint_->node().clock();

  if (blocks_packed_ == 0) {
    clock.advance(kPackFixedUs);
  } else {
    clock.advance(kPackFixedUs + kSenderBlockShare * model.per_block_us);
  }
  ++blocks_packed_;

  BlockRecord record;
  record.length = static_cast<std::uint32_t>(size);
  record.express = (recv_mode == RecvMode::kExpress);

  net::BlockPlan plan;
  if (record.express) {
    plan.aggregate = true;
  } else {
    plan = endpoint_->driver().plan_block(size);
  }

  if (plan.aggregate) {
    record.placement = BlockPlacement::kInline;
    if (!split_marked_ && !record.express) {
      express_prefix_ = control_.position();
      split_marked_ = true;
    }
    write_record(control_, record);
    control_.append(chunk.data(), size);
    if (!record.express) count_real_copy(size);
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
    return;
  }

  record.placement = BlockPlacement::kSeparate;
  record.zero_copy = plan.zero_copy;
  write_record(control_, record);

  // Zero-copy relay: the reference IS the kSafer safety copy — the chunk
  // stays alive (and immutable to us) for as long as the transport needs
  // it, so no host bytes move. kSafer still pays the same virtual copy
  // charge as pack() to keep timing identical across the two entry points.
  if (send_mode == SendMode::kSafer) {
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
  }
  separate_.push_back({chunk, plan.zero_copy});
}

Status Packing::end_packing() {
  MADMPI_CHECK_MSG(!ended_, "end_packing() called twice");
  ended_ = true;
  // The control region leaves as (up to) two references into the single
  // slab the ChunkWriter built in: the EXPRESS prefix and the CHEAPER
  // remainder. No flattening copy happens here.
  const std::size_t pos = control_.position();
  const std::size_t split = split_marked_ ? express_prefix_ : pos;
  ChunkList control;
  if (split != 0) control.push_back(control_.chunk(0, split));
  if (pos > split) control.push_back(control_.chunk(split, pos - split));
  Status status = endpoint_->net_->send_message(remote_, std::move(control),
                                                separate_, delivery_);
  connection_lock_.unlock();
  return status;
}

// -------------------------------------------------------------- Unpacking

Unpacking::Unpacking(ChannelEndpoint* endpoint, net::IncomingMessage message)
    : endpoint_(endpoint),
      message_(std::move(message)),
      reader_(message_.control_payload()) {}

Unpacking::Unpacking(Unpacking&& other) noexcept
    : endpoint_(other.endpoint_),
      message_(std::move(other.message_)),
      reader_(message_.control_payload()),
      blocks_unpacked_(other.blocks_unpacked_),
      ended_(other.ended_),
      aborted_(other.aborted_),
      truncated_(other.truncated_) {
  // Rebind the reader at the same position over the moved payload: O(1)
  // cursor seek, no scratch replay of the consumed prefix.
  reader_.seek(other.reader_.position());
  other.ended_ = true;
}

Unpacking::~Unpacking() {
  MADMPI_CHECK_MSG(ended_, "Unpacking destroyed without end_unpacking()");
}

std::optional<std::size_t> Unpacking::peek_size() {
  if (reader_.exhausted()) return std::nullopt;
  ByteReader probe(reader_.remaining());
  return read_record(probe).length;
}

void Unpacking::unpack(void* data, std::size_t size, SendMode send_mode,
                       RecvMode recv_mode) {
  (void)send_mode;  // the sender-side constraint has no receiver effect
  MADMPI_CHECK_MSG(!ended_, "unpack() after end_unpacking()");
  MADMPI_CHECK_MSG(!reader_.exhausted(),
                   "unpack() past the end of the message");

  const sim::LinkCostModel& model = endpoint_->model();
  sim::VirtualClock& clock = endpoint_->node().clock();

  if (blocks_unpacked_ == 0) {
    clock.advance(kPackFixedUs);
  } else {
    clock.advance(kPackFixedUs + kReceiverBlockShare * model.per_block_us);
  }
  ++blocks_unpacked_;

  const BlockRecord record = read_record(reader_);
  MADMPI_CHECK_MSG(record.length == size,
                   "unpack size does not match the packed block");
  MADMPI_CHECK_MSG(record.express == (recv_mode == RecvMode::kExpress),
                   "unpack receive mode does not match the packed block");

  if (record.placement == BlockPlacement::kInline) {
    // The destination belongs to the caller: when it is the application's
    // receive buffer this is the mandatory final placement (not a staging
    // copy), and when the caller bounces it counts the staging itself.
    reader_.read(data, size);
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
    return;
  }

  // Separate block: its data frame follows the control frame in order —
  // unless the sender aborted, in which case the abort marker was the last
  // frame of this message and the remaining blocks never arrive.
  if (aborted_) {
    std::memset(data, 0, size);
    return;
  }
  sim::Frame frame = message_.take_data_block();
  if (frame.kind == net::kAbortFrame) {
    aborted_ = true;
    std::memset(data, 0, size);
    return;
  }
  MADMPI_CHECK_MSG(frame.payload.size() == size,
                   "data frame size does not match its record");
  std::memcpy(data, frame.payload.contiguous().data(), size);
  // Zero-copy frames land directly in this buffer (no cost: the memcpy
  // above is simulation plumbing, not a modeled copy). Bounced frames'
  // copy already pipelined with the wire in the transmit model. As with
  // the inline path, staging into a bounce is counted by the caller.
}

Unpacking::View Unpacking::unpack_view(std::size_t size, SendMode send_mode,
                                       RecvMode recv_mode) {
  (void)send_mode;
  MADMPI_CHECK_MSG(!ended_, "unpack_view() after end_unpacking()");
  if (reader_.exhausted()) {
    // A stream claiming more blocks than the message carries is malformed
    // input, not a library invariant violation: flag it and hand back an
    // empty view so the caller can surface MPI_ERR_TRUNCATE instead of
    // hard-killing the rank.
    truncated_ = true;
    return {};
  }

  const sim::LinkCostModel& model = endpoint_->model();
  sim::VirtualClock& clock = endpoint_->node().clock();

  if (blocks_unpacked_ == 0) {
    clock.advance(kPackFixedUs);
  } else {
    clock.advance(kPackFixedUs + kReceiverBlockShare * model.per_block_us);
  }
  ++blocks_unpacked_;

  const BlockRecord record = read_record(reader_);
  MADMPI_CHECK_MSG(record.length == size,
                   "unpack size does not match the packed block");
  MADMPI_CHECK_MSG(record.express == (recv_mode == RecvMode::kExpress),
                   "unpack receive mode does not match the packed block");

  if (record.placement == BlockPlacement::kInline) {
    // View straight into the control frame's slab: same virtual charge as
    // unpack()'s inline read (timing identity), but zero host bytes move.
    View view;
    view.backing = message_.control_chunk(reader_.position(), size);
    view.bytes = reader_.remaining().first(size);
    reader_.skip(size);
    clock.advance(static_cast<double>(size) * model.copy_us_per_byte);
    return view;
  }

  if (aborted_) return {};
  sim::Frame frame = message_.take_data_block();
  if (frame.kind == net::kAbortFrame) {
    aborted_ = true;
    return {};
  }
  MADMPI_CHECK_MSG(frame.payload.size() == size,
                   "data frame size does not match its record");
  View view;
  view.backing = frame.payload.slice(0, size);
  view.bytes = view.backing.span();
  return view;
}

std::optional<Unpacking::DrainedBlock> Unpacking::drain_block() {
  if (reader_.exhausted()) return std::nullopt;
  ByteReader probe(reader_.remaining());
  const BlockRecord record = read_record(probe);
  DrainedBlock block;
  block.express = record.express;
  View view = unpack_view(record.length, SendMode::kCheaper,
                          record.express ? RecvMode::kExpress
                                         : RecvMode::kCheaper);
  if (view.bytes.size() != record.length) {
    // Sender abort mid-message: keep the documented bytes.size()==length
    // contract with a zeroed pool chunk so relay consumers stay simple.
    view.backing = SlabPool::global().allocate(record.length);
    if (record.length != 0) {
      std::memset(view.backing.mutable_data(), 0, record.length);
    }
    view.bytes = view.backing.span();
  }
  block.chunk = std::move(view.backing);
  block.bytes = view.bytes;
  return block;
}

const sim::LinkCostModel& Unpacking::model() const {
  return endpoint_->model();
}

void Unpacking::end_unpacking() {
  MADMPI_CHECK_MSG(!ended_, "end_unpacking() called twice");
  MADMPI_CHECK_MSG(reader_.exhausted() || aborted_,
                   "end_unpacking() with blocks left in the message");
  ended_ = true;
}

// --------------------------------------------------------- ChannelEndpoint

ChannelEndpoint::ChannelEndpoint(Channel* channel, net::Endpoint* net,
                                 const net::Driver* driver)
    : channel_(channel), net_(net), driver_(driver) {}

std::mutex& ChannelEndpoint::connection_lock(node_id_t remote) {
  std::lock_guard<std::mutex> lock(lock_map_mutex_);
  auto& slot = connection_locks_[remote];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

Packing ChannelEndpoint::begin_packing(node_id_t remote,
                                       net::DeliveryMode delivery) {
  MADMPI_CHECK_MSG(net_->has_peer(remote),
                   "begin_packing to a node outside the channel");
  std::unique_lock<std::mutex> lock(connection_lock(remote));
  return Packing(this, remote, std::move(lock), delivery);
}

std::optional<Unpacking> ChannelEndpoint::begin_unpacking() {
  auto message = net_->next_message_blocking();
  if (!message) return std::nullopt;
  return Unpacking(this, std::move(*message));
}

std::optional<Unpacking> ChannelEndpoint::try_begin_unpacking() {
  auto message = net_->poll_message();
  if (!message) return std::nullopt;
  return Unpacking(this, std::move(*message));
}

// ------------------------------------------------------------------ Channel

Channel::Channel(channel_id_t id, std::string name, const net::Driver* driver,
                 std::unique_ptr<net::ChannelTransport> transport)
    : id_(id),
      name_(std::move(name)),
      driver_(driver),
      transport_(std::move(transport)) {
  for (node_id_t member : transport_->members()) {
    endpoints_.push_back(std::make_unique<ChannelEndpoint>(
        this, transport_->endpoint(member), driver_));
  }
}

ChannelEndpoint* Channel::at(node_id_t node) {
  for (auto& endpoint : endpoints_) {
    if (endpoint->node_id() == node) return endpoint.get();
  }
  return nullptr;
}

bool Channel::has_member(node_id_t node) const {
  const auto& members = transport_->members();
  return std::find(members.begin(), members.end(), node) != members.end();
}

bool Channel::link_alive(node_id_t src, node_id_t dst) {
  ChannelEndpoint* a = at(src);
  ChannelEndpoint* b = at(dst);
  if (a == nullptr || b == nullptr) return false;
  // Either side declaring the connection dead kills it for routing: death
  // is typically observed by the sender only, but traffic flows both ways.
  return a->peer_health(dst) != sim::LinkHealth::kDead &&
         b->peer_health(src) != sim::LinkHealth::kDead;
}

void Channel::close() {
  for (node_id_t member : transport_->members()) {
    transport_->endpoint(member)->close();
  }
}

net::Endpoint::TrafficStats Channel::traffic() const {
  net::Endpoint::TrafficStats total;
  for (node_id_t member : transport_->members()) {
    total += transport_->endpoint(member)->stats();
  }
  return total;
}

}  // namespace madmpi::mad
