// Madeleine pack/unpack semantics flags (paper Section 3.2).
#pragma once

namespace madmpi::mad {

/// Constraints the sender puts on one packed block.
enum class SendMode {
  /// The user buffer may be reused as soon as mad_pack returns: Madeleine
  /// must copy immediately.
  kSafer,
  /// The buffer must stay valid until mad_end_packing (deferred copy or
  /// direct transmission allowed).
  kLater,
  /// No constraint: Madeleine picks the cheapest strategy for the network
  /// (the common case for bulk data).
  kCheaper,
};

/// Constraints the receiver puts on one unpacked block.
enum class RecvMode {
  /// The data must be available as soon as mad_unpack returns. Required
  /// when the value controls the rest of the unpacking (message headers,
  /// sizes). EXPRESS blocks travel with the control portion of the message.
  kExpress,
  /// The data is only guaranteed after mad_end_unpacking; Madeleine may
  /// deliver it zero-copy at its convenience.
  kCheaper,
};

constexpr const char* send_mode_name(SendMode mode) {
  switch (mode) {
    case SendMode::kSafer: return "send_SAFER";
    case SendMode::kLater: return "send_LATER";
    case SendMode::kCheaper: return "send_CHEAPER";
  }
  return "?";
}

constexpr const char* recv_mode_name(RecvMode mode) {
  switch (mode) {
    case RecvMode::kExpress: return "receive_EXPRESS";
    case RecvMode::kCheaper: return "receive_CHEAPER";
  }
  return "?";
}

}  // namespace madmpi::mad
