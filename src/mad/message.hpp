// On-the-wire layout of a Madeleine message's control portion.
//
// A message's control frame carries, for each packed block in order, a
// record header followed (for inline blocks) by the block bytes. Separate
// blocks (zero-copy / bulk) travel as their own data frames after the
// control frame; their record only announces them.
#pragma once

#include <cstdint>

#include "common/byte_buffer.hpp"

namespace madmpi::mad {

enum class BlockPlacement : std::uint8_t {
  kInline = 0,    // bytes live in the control frame
  kSeparate = 1,  // bytes follow as a dedicated data frame
};

struct BlockRecord {
  BlockPlacement placement = BlockPlacement::kInline;
  bool zero_copy = false;  // separate blocks only
  bool express = false;    // receiver asked for receive_EXPRESS
  std::uint32_t length = 0;
};

/// Works over any typed writer (ByteWriter, ChunkWriter).
template <typename Writer>
inline void write_record(Writer& writer, const BlockRecord& record) {
  writer.put(static_cast<std::uint8_t>(record.placement));
  std::uint8_t flags = 0;
  if (record.zero_copy) flags |= 1u;
  if (record.express) flags |= 2u;
  writer.put(flags);
  writer.put(record.length);
}

inline BlockRecord read_record(ByteReader& reader) {
  BlockRecord record;
  record.placement = static_cast<BlockPlacement>(reader.get<std::uint8_t>());
  const auto flags = reader.get<std::uint8_t>();
  record.zero_copy = (flags & 1u) != 0;
  record.express = (flags & 2u) != 0;
  record.length = reader.get<std::uint32_t>();
  return record;
}

}  // namespace madmpi::mad
