// The Madeleine II session object: owns the drivers and the channels built
// over a simulated cluster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mad/channel.hpp"
#include "net/driver.hpp"
#include "sim/fabric.hpp"
#include "sim/topology.hpp"

namespace madmpi::mad {

class Madeleine {
 public:
  /// Builds the fabric's nodes/NICs from `cluster` and keeps both borrowed
  /// references for the session's lifetime.
  Madeleine(sim::Fabric& fabric, sim::ClusterSpec cluster);
  ~Madeleine();

  Madeleine(const Madeleine&) = delete;
  Madeleine& operator=(const Madeleine&) = delete;

  /// Open a channel over one of the cluster's networks. Several channels
  /// may share a network (the paper uses this to split module traffic);
  /// in-order delivery holds only within a channel.
  Channel& open_channel(const sim::NetworkSpec& network, std::string name);

  /// Open one channel per declared network, named after its protocol.
  /// Returns them in declaration order.
  std::vector<Channel*> open_default_channels();

  Channel* channel_by_name(const std::string& name);
  std::vector<Channel*> channels();

  /// Channels on which `node` is a member.
  std::vector<Channel*> channels_of(node_id_t node);

  net::Driver& driver(sim::Protocol protocol);

  sim::Fabric& fabric() { return fabric_; }
  const sim::ClusterSpec& cluster() const { return cluster_; }

  /// Close every channel (wakes all blocked receivers with EOF).
  void close_all();

 private:
  sim::Fabric& fabric_;
  sim::ClusterSpec cluster_;
  std::vector<std::unique_ptr<net::Driver>> drivers_;
  std::vector<std::unique_ptr<Channel>> channels_;
  channel_id_t next_channel_id_ = 0;
};

}  // namespace madmpi::mad
