#include "mad/madeleine.hpp"

#include <algorithm>

namespace madmpi::mad {

Madeleine::Madeleine(sim::Fabric& fabric, sim::ClusterSpec cluster)
    : fabric_(fabric), cluster_(std::move(cluster)) {
  MADMPI_CHECK_MSG(cluster_.validate().is_ok(), "invalid cluster spec");
  // Create the nodes up front; NICs appear lazily as channels open.
  for (const auto& node : cluster_.nodes) {
    fabric_.add_node(node.name, node.cpus, node.big_endian);
  }
}

Madeleine::~Madeleine() { close_all(); }

net::Driver& Madeleine::driver(sim::Protocol protocol) {
  for (auto& driver : drivers_) {
    if (driver->protocol() == protocol) return *driver;
  }
  drivers_.push_back(net::make_driver(protocol));
  return *drivers_.back();
}

Channel& Madeleine::open_channel(const sim::NetworkSpec& network,
                                 std::string name) {
  net::Driver& drv = driver(network.protocol);
  auto transport = drv.open_channel(fabric_, network, cluster_, name);
  channels_.push_back(std::make_unique<Channel>(
      next_channel_id_++, std::move(name), &drv, std::move(transport)));
  return *channels_.back();
}

std::vector<Channel*> Madeleine::open_default_channels() {
  std::vector<Channel*> out;
  int counter = 0;
  for (const auto& network : cluster_.networks) {
    std::string name = sim::protocol_keyword(network.protocol);
    // Disambiguate multiple networks of the same protocol.
    name += "-" + std::to_string(counter++);
    out.push_back(&open_channel(network, std::move(name)));
  }
  return out;
}

Channel* Madeleine::channel_by_name(const std::string& name) {
  for (auto& channel : channels_) {
    if (channel->name() == name) return channel.get();
  }
  return nullptr;
}

std::vector<Channel*> Madeleine::channels() {
  std::vector<Channel*> out;
  out.reserve(channels_.size());
  for (auto& channel : channels_) out.push_back(channel.get());
  return out;
}

std::vector<Channel*> Madeleine::channels_of(node_id_t node) {
  std::vector<Channel*> out;
  for (auto& channel : channels_) {
    if (channel->has_member(node)) out.push_back(channel.get());
  }
  return out;
}

void Madeleine::close_all() {
  for (auto& channel : channels_) channel->close();
}

}  // namespace madmpi::mad
