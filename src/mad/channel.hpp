// Madeleine II channels, message packing and unpacking (paper Section 3).
//
// A channel is a closed communication world bound to one network protocol
// and adapter (like an MPI communicator, §3.1). Each member node owns a
// ChannelEndpoint. Messages are built incrementally: begin_packing, a
// sequence of pack(block, send_mode, recv_mode), end_packing; mirrored by
// begin_unpacking / unpack / end_unpacking on the receiving side.
// In-order delivery is guaranteed per point-to-point connection within a
// channel, never across channels.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/byte_buffer.hpp"
#include "mad/message.hpp"
#include "mad/modes.hpp"
#include "net/driver.hpp"

namespace madmpi::mad {

class ChannelEndpoint;

/// Virtual CPU cost of one pack/unpack call's bookkeeping.
inline constexpr usec_t kPackFixedUs = 0.3;

/// The measured per-extra-block protocol overhead (LinkCostModel::
/// per_block_us) is split between the two sides of the transfer.
inline constexpr double kSenderBlockShare = 0.6;
inline constexpr double kReceiverBlockShare = 0.4;

/// An outgoing message under construction. Move-only; end_packing() must be
/// called exactly once (checked). Maps to the paper's
/// `connection = mad_begin_packing(channel, remote)` usage.
class Packing {
 public:
  Packing(Packing&&) noexcept;
  Packing& operator=(Packing&&) = delete;
  Packing(const Packing&) = delete;
  Packing& operator=(const Packing&) = delete;
  ~Packing();

  /// Append one block. The buffer must stay valid until end_packing()
  /// unless send_mode is kSafer (copied immediately).
  void pack(const void* data, std::size_t size, SendMode send_mode,
            RecvMode recv_mode);

  /// Append a block that already lives in a pooled chunk (the forwarding
  /// relay's zero-copy primitive): wire layout and virtual charges match
  /// pack() exactly, but a separate block travels by refcount bump — the
  /// reference IS the kSafer safety copy.
  void pack_chunk(const ChunkRef& chunk, SendMode send_mode,
                  RecvMode recv_mode);

  /// Flush the message to the wire. Blocking (Madeleine primitives are
  /// blocking, §4.1); on return all buffers are reusable. Non-ok when
  /// delivery failed permanently (dead link / retries exhausted); the
  /// message is then NOT delivered and may be re-packed on another channel.
  Status end_packing();

  node_id_t remote() const { return remote_; }
  std::size_t blocks_packed() const { return blocks_packed_; }

 private:
  friend class ChannelEndpoint;
  Packing(ChannelEndpoint* endpoint, node_id_t remote,
          std::unique_lock<std::mutex> connection_lock,
          net::DeliveryMode delivery);

  ChannelEndpoint* endpoint_;
  node_id_t remote_;
  net::DeliveryMode delivery_;
  std::unique_lock<std::mutex> connection_lock_;

  /// The control region builds directly in one pooled slab; at
  /// end_packing() it leaves as (up to) two chunk references — the EXPRESS
  /// prefix and the CHEAPER remainder — into that same slab.
  ChunkWriter control_;
  std::vector<net::OutBlock> separate_;
  std::size_t express_prefix_ = 0;  // control bytes before the first
                                    // non-express inline block
  bool split_marked_ = false;
  std::size_t blocks_packed_ = 0;
  bool ended_ = false;
};

/// An incoming message being consumed. Obtained from begin_unpacking().
class Unpacking {
 public:
  Unpacking(Unpacking&&) noexcept;
  Unpacking& operator=(Unpacking&&) = delete;
  Unpacking(const Unpacking&) = delete;
  Unpacking& operator=(const Unpacking&) = delete;
  ~Unpacking();

  /// Extract the next block into `data`. Modes must mirror the sender's
  /// pack call (checked). With kExpress the data is usable on return; with
  /// kCheaper it is guaranteed by end_unpacking() (this implementation
  /// delivers immediately, which is a permitted strengthening).
  void unpack(void* data, std::size_t size, SendMode send_mode,
              RecvMode recv_mode);

  /// Zero-copy variant of unpack(): consumes the next block and returns a
  /// view of the wire bytes plus the chunk reference keeping them alive.
  /// Identical virtual charges and mode checks as unpack(); no host copy.
  /// After a sender abort, `bytes` is empty and aborted() turns true — the
  /// consumer must discard the partial message as usual.
  struct View {
    byte_span bytes;
    ChunkRef backing;
  };
  View unpack_view(std::size_t size, SendMode send_mode, RecvMode recv_mode);

  /// Size of the next block without consuming it (convenience beyond the
  /// strict paper API; used by tests and by the forwarder).
  std::optional<std::size_t> peek_size();

  /// Consume the next block without knowing its size or modes in advance:
  /// returns a chunk reference to its bytes and whether it was packed for
  /// receive_EXPRESS. This is the relay primitive of the gateway forwarder
  /// (the paper's Section 6 future-work mechanism); together with
  /// Packing::pack_chunk a gateway relays blocks without touching their
  /// bytes. Empty at end of message.
  struct DrainedBlock {
    ChunkRef chunk;
    byte_span bytes;  // == chunk.span() (zeroed pool chunk after an abort)
    bool express = false;
  };
  std::optional<DrainedBlock> drain_block();

  /// Finish; checks that every packed block was unpacked (relaxed for
  /// aborted messages, which may legitimately end early).
  void end_unpacking();

  /// True once the sender's abort marker was observed: the sender gave up
  /// on this message mid-flight and will retry it on another route. The
  /// consumer must discard everything unpacked from it.
  bool aborted() const { return aborted_; }

  /// True once an unpack asked for more blocks than the message carries (a
  /// malformed or ragged stream). The offending unpack_view() returned an
  /// empty view; the consumer maps this onto the recoverable
  /// MPI_ERR_TRUNCATE path instead of aborting the rank.
  bool truncated() const { return truncated_; }

  /// Cost model of the channel this message arrived on (per-driver RMA
  /// landing charges are taken from here by the ch_mad handlers).
  const sim::LinkCostModel& model() const;

  node_id_t source() const { return message_.source(); }
  std::size_t blocks_unpacked() const { return blocks_unpacked_; }

 private:
  friend class ChannelEndpoint;
  Unpacking(ChannelEndpoint* endpoint, net::IncomingMessage message);

  ChannelEndpoint* endpoint_;
  net::IncomingMessage message_;
  ByteReader reader_;
  std::size_t blocks_unpacked_ = 0;
  bool ended_ = false;
  bool aborted_ = false;
  bool truncated_ = false;
};

class Channel;

/// Per-node view of a channel.
class ChannelEndpoint {
 public:
  ChannelEndpoint(Channel* channel, net::Endpoint* net,
                  const net::Driver* driver);

  /// Start a message towards `remote`. Serializes with other messages on
  /// the same point-to-point connection (in-order guarantee, §3.1).
  /// `delivery` selects normal (fault-subject) or teardown (out-of-band)
  /// transmission — see net::DeliveryMode.
  Packing begin_packing(node_id_t remote,
                        net::DeliveryMode delivery = net::DeliveryMode::kNormal);

  /// Delivery health towards a channel peer as seen from this node.
  sim::LinkHealth peer_health(node_id_t peer) const {
    return net_->peer_health(peer);
  }

  /// Blocking receive of the next message on this channel (any source).
  /// Empty when the channel has been closed.
  std::optional<Unpacking> begin_unpacking();

  /// Non-blocking variant for poll loops.
  std::optional<Unpacking> try_begin_unpacking();

  /// Cheap "is something waiting" test (Marcel poll integration).
  bool incoming_available() { return net_->message_available(); }

  Channel& channel() { return *channel_; }
  sim::Node& node() { return net_->node(); }
  node_id_t node_id() const { return net_->node_id(); }
  const sim::LinkCostModel& model() const { return net_->model(); }
  const net::Driver& driver() const { return *driver_; }
  net::Endpoint::TrafficStats traffic() const { return net_->stats(); }

 private:
  friend class Packing;
  friend class Unpacking;

  Channel* channel_;
  net::Endpoint* net_;
  const net::Driver* driver_;

  std::mutex lock_map_mutex_;
  std::map<node_id_t, std::unique_ptr<std::mutex>> connection_locks_;

  std::mutex& connection_lock(node_id_t remote);
};

/// A Madeleine channel: protocol + adapter + member endpoints.
class Channel {
 public:
  Channel(channel_id_t id, std::string name, const net::Driver* driver,
          std::unique_ptr<net::ChannelTransport> transport);

  channel_id_t id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Protocol protocol() const { return transport_->protocol(); }
  const net::Driver& driver() const { return *driver_; }
  usec_t poll_cost() const { return driver_->poll_cost(); }

  /// Endpoint on `node`; null when the node is not a channel member.
  ChannelEndpoint* at(node_id_t node);

  const std::vector<node_id_t>& members() const {
    return transport_->members();
  }
  bool has_member(node_id_t node) const;

  /// True while neither side has declared the src->dst connection dead.
  /// Routers skip channels whose link is down when electing a route.
  bool link_alive(node_id_t src, node_id_t dst);

  /// Shut the channel down: blocked begin_unpacking calls return empty.
  void close();

  /// Aggregate traffic over all member endpoints.
  net::Endpoint::TrafficStats traffic() const;

 private:
  channel_id_t id_;
  std::string name_;
  const net::Driver* driver_;
  std::unique_ptr<net::ChannelTransport> transport_;
  std::vector<std::unique_ptr<ChannelEndpoint>> endpoints_;
};

}  // namespace madmpi::mad
