// Cluster topology specification: which machines exist, which networks
// connect them, and how many MPI ranks each machine hosts. Mirrors the
// paper's "cluster of clusters": every node on Fast-Ethernet, subsets also
// on SCI and/or Myrinet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"

namespace madmpi::sim {

struct NicSpec {
  Protocol protocol = Protocol::kTcp;
  adapter_id_t adapter = 0;
};

struct NodeSpec {
  std::string name;
  int cpus = 2;    // dual-PentiumII nodes in the paper's testbed
  int ranks = 1;   // MPI processes hosted on this node
  /// Declared byte order: heterogeneous clusters may mix endianness, and
  /// the ADI's heterogeneity management converts on the receiving side.
  bool big_endian = false;
};

/// A physical network: a protocol/adapter pair plus its member nodes
/// (named). Every member gets a NIC; members are pairwise connected.
struct NetworkSpec {
  Protocol protocol = Protocol::kTcp;
  adapter_id_t adapter = 0;
  std::vector<std::string> members;
};

struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  std::vector<NetworkSpec> networks;

  /// `count` identical nodes all connected by one network of `protocol`.
  static ClusterSpec homogeneous(int count, Protocol protocol,
                                 int ranks_per_node = 1);

  /// The paper's meta-cluster: `sci_nodes` machines on SCI, `myri_nodes`
  /// machines on Myrinet, everything also connected by Fast-Ethernet.
  static ClusterSpec cluster_of_clusters(int sci_nodes, int myri_nodes,
                                         int ranks_per_node = 1);

  /// Parse the tiny text format:
  ///   node <name> [cpus=N] [ranks=N]
  ///   network <tcp|sci|myrinet> [adapter=N] <name>...
  /// '#' starts a comment. Returns an error status on malformed input.
  static Status parse(const std::string& text, ClusterSpec* out);

  Status validate() const;

  int total_ranks() const;
  std::optional<int> node_index(const std::string& name) const;

  /// Map a global rank to (node index, local index on that node). Ranks are
  /// laid out node-major: node 0 hosts ranks [0, ranks0), etc.
  std::pair<int, int> rank_location(rank_t rank) const;

  /// Protocols shared by two nodes (every network containing both).
  std::vector<Protocol> common_protocols(int node_a, int node_b) const;
};

/// Protocol <-> config-file keyword.
std::optional<Protocol> protocol_from_keyword(const std::string& word);
const char* protocol_keyword(Protocol protocol);

}  // namespace madmpi::sim
