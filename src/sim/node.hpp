// Simulated cluster nodes.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/cost_model.hpp"
#include "sim/virtual_clock.hpp"

namespace madmpi::sim {

/// One machine of the simulated cluster: identity, a virtual clock shared by
/// every thread the node hosts (rank threads, polling threads), and a
/// registry of active pollers used to model cross-protocol polling
/// interference (the effect measured in Figure 9).
class Node {
 public:
  Node(node_id_t id, std::string name, int cpus, bool big_endian = false)
      : id_(id),
        name_(std::move(name)),
        cpus_(cpus),
        big_endian_(big_endian) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  node_id_t id() const { return id_; }
  const std::string& name() const { return name_; }
  int cpus() const { return cpus_; }
  bool big_endian() const { return big_endian_; }

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

  /// Register a polling activity (one per Madeleine channel in ch_mad).
  /// `cost_us` is the price of one poll iteration of that protocol.
  void register_poller(channel_id_t channel, usec_t cost_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    pollers_[channel] = cost_us;
  }

  void unregister_poller(channel_id_t channel) {
    std::lock_guard<std::mutex> lock(mutex_);
    pollers_.erase(channel);
  }

  /// Expected delay added to an incoming-message handling on `channel`
  /// because other polling threads share the node's CPUs: on average the
  /// handler waits half of each concurrent poller's iteration cost. This is
  /// the mechanism behind the SCI+TCP degradation of Figure 9.
  usec_t poll_interference(channel_id_t channel) const {
    std::lock_guard<std::mutex> lock(mutex_);
    usec_t extra = 0.0;
    for (const auto& [id, cost] : pollers_) {
      if (id != channel) extra += 0.5 * cost;
    }
    return extra;
  }

  std::size_t active_pollers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pollers_.size();
  }

 private:
  const node_id_t id_;
  const std::string name_;
  const int cpus_;
  const bool big_endian_;
  VirtualClock clock_;

  mutable std::mutex mutex_;
  std::map<channel_id_t, usec_t> pollers_;
};

}  // namespace madmpi::sim
