// Event tracing: a timeline of protocol events in virtual time.
//
// When enabled, the transport and device layers record one event per
// message milestone (injection, arrival, dispatch, rendezvous steps).
// Dumps render as CSV for timeline tools or as an aligned text log —
// the observability a simulator owes its users.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace madmpi::sim {

enum class TraceCategory : std::uint8_t {
  kSend,      // message injected into a channel
  kArrive,    // control frame arrival observed by a poller
  kDispatch,  // device packet dispatched (eager deliver, rndv step...)
  kMatch,     // matching decision (posted hit / unexpected store)
  kComplete,  // request completion
  kRelay,     // gateway forwarding hop
  kDrop,      // frame lost in the fabric (fault injection)
  kRetry,     // retransmission after a lost frame
  kFailover,  // route re-election after a channel died
};

const char* trace_category_name(TraceCategory category);

struct TraceEvent {
  usec_t time_us = 0.0;
  node_id_t node = kInvalidNode;
  TraceCategory category = TraceCategory::kSend;
  std::uint64_t bytes = 0;
  // Small fixed-size label (channel or packet kind); avoids allocation on
  // the hot path.
  char label[24] = {};
};

/// A bounded, thread-safe event sink. Disabled by default: recording is a
/// single relaxed atomic load when off.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16) { events_.reserve(capacity); }

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void record(usec_t time_us, node_id_t node, TraceCategory category,
              std::uint64_t bytes, const char* label);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Events sorted by virtual time, rendered as CSV with a header row.
  std::string to_csv() const;

  /// The process-wide tracer every hook reports to.
  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Convenience hook: record into the global tracer when it is enabled.
inline void trace(usec_t time_us, node_id_t node, TraceCategory category,
                  std::uint64_t bytes, const char* label) {
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) {
    tracer.record(time_us, node, category, bytes, label);
  }
}

}  // namespace madmpi::sim
