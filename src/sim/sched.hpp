// Deterministic schedule exploration (the interleaving fuzzer's core).
//
// The simulator is full of nondeterministic *choice points*: which polling
// thread wakes first, how often each channel polls, which ready source a
// poller drains next, when a receiver batches credit returns, and when a
// fault plan fires relative to the traffic it hits. Host scheduling decides
// none of the *outcomes* (virtual time does), but it decides the *order*,
// and ordering bugs hide in orders a developer's machine never produces.
//
// A ScheduleController perturbs every one of those choice points from a
// single seed. Every decision is a pure function of (seed, a stable
// identity for the choice point, and a per-identity sequence number that
// the caller derives from its own causal history) — never of host time,
// host thread ids, or racy shared state. Two runs with the same seed
// therefore make identical decisions at every choice point, which is what
// makes a failing interleaving replayable bit-for-bit.
//
// The perturbation *mask* exists for shrinking: a failure found with all
// choice points enabled is re-run with individual bits cleared (the
// cleared choice point reverts to its unperturbed default) until a minimal
// set of choice points that still reproduces the failure remains.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace madmpi::sim {

/// The nondeterministic choice points the controller can perturb. Each one
/// owns a bit in the perturbation mask.
enum class SchedChoice : std::uint8_t {
  kPollWakeup = 0,   // extra latency on a polling thread's wakeup
  kPollFrequency,    // per-channel poll cost (interference) perturbation
  kDeliveryOrder,    // bias among ready sources competing for delivery
  kCreditBatch,      // credit-return batching threshold
  kFaultOffset,      // fault-plan firing offset in virtual time
  kFiberWake,        // which parked fiber a shard worker scans first
  kCount,
};

const char* sched_choice_name(SchedChoice choice);

inline constexpr std::uint32_t kSchedAllChoices =
    (1u << static_cast<unsigned>(SchedChoice::kCount)) - 1u;

inline constexpr std::uint32_t sched_bit(SchedChoice choice) {
  return 1u << static_cast<unsigned>(choice);
}

class ScheduleController {
 public:
  explicit ScheduleController(std::uint64_t seed,
                              std::uint32_t mask = kSchedAllChoices)
      : seed_(seed), mask_(mask) {}

  std::uint64_t seed() const { return seed_; }
  std::uint32_t mask() const { return mask_; }
  bool enabled(SchedChoice choice) const {
    return seed_ != 0 && (mask_ & sched_bit(choice)) != 0;
  }

  // ---- decision functions ----------------------------------------------
  // All pure in (seed, identity, sequence); the atomic counters below only
  // tally how often each choice point fired (observability, not state).

  /// Extra virtual latency charged to poller `channel` on node `node` for
  /// its `wakeup_index`-th wakeup. Uniform in [0, 4) microseconds — enough
  /// to reorder two pollers racing for the same arrival, small enough not
  /// to distort bandwidth results.
  usec_t poll_wakeup_jitter_us(node_id_t node, channel_id_t channel,
                               std::uint64_t wakeup_index);

  /// Per-channel perturbation of the registered poll cost (feeds the
  /// interference model, so it shifts *every* wakeup on the node).
  /// Uniform in [0, base_cost_us / 2].
  usec_t poll_frequency_jitter_us(node_id_t node, channel_id_t channel,
                                  usec_t base_cost_us);

  /// Bias added to the arrival time of the message with sequence `seq`
  /// from `src` when `dst` chooses which ready source to drain next.
  /// Uniform in [0, 5) microseconds: reorders near-simultaneous arrivals
  /// without starving anyone.
  usec_t delivery_bias_us(node_id_t dst, node_id_t src, std::uint64_t seq);

  /// The owed-bytes threshold at which a receiver flushes a credit return
  /// to `origin`. `epoch` counts batches already flushed on this (me,
  /// origin) pair. Uniform in [window/4, 3*window/4]; the unperturbed
  /// default is window/2.
  std::size_t credit_batch_threshold(node_id_t me, node_id_t origin,
                                     std::uint64_t epoch, std::size_t window);

  /// Virtual-time offset applied to every rule of a fault plan (its
  /// outage windows and kill instants slide together). Uniform in
  /// [0, 500) microseconds — wide enough to move a kill across protocol
  /// phase boundaries (eager vs rendezvous handshake vs data push).
  usec_t fault_offset_us(std::uint64_t plan_seed);

  /// Where shard worker `shard` starts its `round`-th scan over its `n`
  /// fibers. Rotating the scan origin reorders which runnable (or
  /// newly-ready parked) fiber wins the slice — the fiber engine's
  /// wake-order choice point. Pure in (seed, shard, round); the
  /// unperturbed default is 0 (stable round-robin from the front).
  std::size_t fiber_wake_start(std::size_t shard, std::uint64_t round,
                               std::size_t n);

  /// How many times each choice point has produced a decision.
  std::uint64_t decisions(SchedChoice choice) const {
    return decisions_[static_cast<std::size_t>(choice)].load(
        std::memory_order_relaxed);
  }

  // ---- process-global registration -------------------------------------
  // The hooks live deep in layers that have no construction-time path to a
  // controller (poll servers, endpoints), so the active controller is a
  // process global. Controllers are retired, never freed: a hook that
  // loaded the pointer just before uninstall() must still be able to call
  // through it.

  /// The active controller, or nullptr when schedule perturbation is off.
  /// First call bootstraps from MADMPI_SCHED_SEED if the env var is set.
  static ScheduleController* current();

  /// Install a controller for `seed` (0 uninstalls). Returns the active
  /// controller, nullptr if seed was 0.
  static ScheduleController* install(std::uint64_t seed,
                                     std::uint32_t mask = kSchedAllChoices);

  static void uninstall();

 private:
  /// The single mixing function every decision goes through: a splitmix64
  /// finalizer over seed and identity words. Statistically independent
  /// outputs for distinct identities, identical outputs for identical
  /// (seed, identity) — the replay property in one function.
  std::uint64_t mix(SchedChoice choice, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c);

  /// mix() scaled to a double in [0, 1).
  double mix_unit(SchedChoice choice, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c);

  std::uint64_t seed_;
  std::uint32_t mask_;
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(SchedChoice::kCount)>
      decisions_{};
};

}  // namespace madmpi::sim
