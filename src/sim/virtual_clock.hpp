// Per-node virtual clocks with per-thread lanes.
//
// Ranks, polling threads and temporary protocol threads are real OS
// threads, but time is simulated. A naive single clock per node breaks
// causality under concurrency: a polling thread that synchronizes to a
// late arrival would inflate the departure timestamps of *independent*
// work other threads do on the same node (and the inflation depends on
// host scheduling — goodbye determinism).
//
// So each (thread, clock) pair owns a *lane*: the thread's causal time on
// that node. advance() and sync_to() act on the caller's lane; causal
// edges between threads are expressed explicitly — message arrival
// timestamps, semaphore release stamps, and bind_lane() at thread spawn.
// The clock itself keeps a monotone high-water mark over all lanes, which
// is what external observers (tests, stats) read.
//
// lanes() exposes the live lanes themselves: the schedule-exploration
// harness and the progress watchdog use it to see whether *any* thread on
// a node is still advancing (a cheap progress fingerprint) instead of
// guessing from the high-water mark alone, which a single busy lane can
// pin while every other lane is stuck.
//
// Execution contexts and lanes: a lane belongs to an *execution context*,
// not to an OS thread. By default every OS thread owns one implicit
// context (a thread-local LaneMap), which reproduces the historical
// behavior exactly. The sharded fiber engine gives each rank fiber its own
// LaneMap and installs it for the duration of a run slice, so a fiber
// keeps its causal lanes when it migrates between park/resume cycles on a
// worker thread. While a slice runs the engine opens a *batch*: lane
// stores stay immediately visible (lanes() snapshots and fingerprints keep
// working mid-slice), but the high-water CAS is deferred to the end of the
// slice — one publication per touched clock per slice instead of one per
// advance. high_water() folds the caller's own unpublished lanes back in,
// so a context always observes its own progress.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace madmpi::sim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(usec_t start) { reset(start); }

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// One live lane as seen by an observer: a process-unique id (stable for
  /// the lane's lifetime, so successive snapshots correlate) and the
  /// lane's current causal time.
  struct LaneInfo {
    std::uint64_t id = 0;
    usec_t time = 0.0;
  };

 private:
  struct Lane {
    std::atomic<usec_t> time{0.0};
    std::uint64_t generation = 0;
    std::uint64_t id = 0;
    // True while this lane's latest time awaits its deferred high-water
    // publication. Only ever touched by the worker thread currently
    // running the owning execution context, so it needs no atomicity.
    bool deferred = false;
  };

 public:
  /// One execution context's lanes across every clock it has touched. OS
  /// threads get an implicit one; the fiber engine owns one per fiber and
  /// installs it around each run slice.
  class LaneMap {
   public:
    LaneMap() = default;
    LaneMap(const LaneMap&) = delete;
    LaneMap& operator=(const LaneMap&) = delete;

   private:
    friend class VirtualClock;
    std::unordered_map<const VirtualClock*, std::shared_ptr<Lane>> slots_;
    bool batching_ = false;
    // Lanes advanced during the open batch, awaiting high-water flush.
    std::vector<std::pair<const VirtualClock*, std::shared_ptr<Lane>>>
        deferred_;
  };

  /// Install `next` as the calling thread's active lane map (nullptr
  /// restores the thread's implicit map). Returns the previous override so
  /// callers can nest. Used only by the fiber engine around run slices.
  static LaneMap* exchange_lane_map(LaneMap* next) {
    LaneMap*& slot = active_override();
    LaneMap* prev = slot;
    slot = next;
    return prev;
  }

  /// Open a batch on the calling thread's active map: high-water
  /// publication is deferred until end_batch(). Lane stores remain
  /// immediately visible.
  static void begin_batch() { active_map().batching_ = true; }

  /// Close the batch: publish each touched clock's final lane time once.
  static void end_batch() {
    LaneMap& map = active_map();
    map.batching_ = false;
    for (auto& [clock, slot] : map.deferred_) {
      slot->deferred = false;
      clock->raise_high_water(slot->time.load(std::memory_order_relaxed));
    }
    map.deferred_.clear();
  }

  /// The calling context's causal time on this clock. A context's first
  /// touch adopts the current high-water mark (right for observers and
  /// sequential phases; causally-spawned threads use bind_lane instead).
  usec_t now() const {
    return lane_in(active_map())->time.load(std::memory_order_relaxed);
  }

  /// Charge `dt` microseconds of local work to the caller's lane.
  usec_t advance(usec_t dt) {
    LaneMap& map = active_map();
    const std::shared_ptr<Lane>& slot = lane_in(map);
    const usec_t t = slot->time.load(std::memory_order_relaxed) + dt;
    slot->time.store(t, std::memory_order_release);
    publish(map, slot, t);
    return t;
  }

  /// Move the caller's lane forward to at least `t` (message arrival,
  /// semaphore release stamp, ...). Never moves backwards.
  usec_t sync_to(usec_t t) {
    LaneMap& map = active_map();
    const std::shared_ptr<Lane>& slot = lane_in(map);
    const usec_t current = slot->time.load(std::memory_order_relaxed);
    if (current < t) {
      slot->time.store(t, std::memory_order_release);
      publish(map, slot, t);
      return t;
    }
    return current;
  }

  /// Set the caller's lane explicitly — used at thread spawn to hand the
  /// new thread its causal birth time.
  void bind_lane(usec_t t) {
    LaneMap& map = active_map();
    const std::shared_ptr<Lane>& slot = lane_in(map);
    slot->time.store(t, std::memory_order_release);
    publish(map, slot, t);
  }

  /// Largest time any lane has reached (what tests and stats observe).
  /// Folds in the caller's own batched-but-unpublished lane, so a context
  /// mid-slice always observes at least its own progress.
  usec_t high_water() const {
    usec_t hw = high_water_.load(std::memory_order_acquire);
    if (const LaneMap* map = active_override(); map && map->batching_) {
      auto it = map->slots_.find(this);
      if (it != map->slots_.end() && it->second->deferred) {
        hw = std::max(hw, it->second->time.load(std::memory_order_relaxed));
      }
    }
    return hw;
  }

  /// Snapshot of every live lane of the current generation, sorted by lane
  /// id. Lanes of exited threads drop out (their shared state expires with
  /// the thread-local map); lanes from before the last reset() are
  /// filtered by generation. Times are racy reads of other threads' lanes
  /// — fine for progress detection, not for causal reasoning.
  std::vector<LaneInfo> lanes() const {
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    std::vector<LaneInfo> out;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto survivor = registry_.begin();
    for (auto it = registry_.begin(); it != registry_.end(); ++it) {
      std::shared_ptr<Lane> strong = it->lock();
      if (!strong) continue;  // thread exited: prune
      // Guard the self-position case: weak_ptr move-assignment onto itself
      // empties it (libstdc++ releases before stealing), which would
      // silently deregister a live lane.
      if (survivor != it) *survivor = std::move(*it);
      ++survivor;
      if (strong->generation != generation) continue;
      out.push_back(
          {strong->id, strong->time.load(std::memory_order_acquire)});
    }
    registry_.erase(survivor, registry_.end());
    std::sort(out.begin(), out.end(),
              [](const LaneInfo& a, const LaneInfo& b) { return a.id < b.id; });
    return out;
  }

  /// Restart from `t`: bumps the generation so every thread's stale lane
  /// reinitializes on next touch.
  void reset(usec_t t = 0.0) {
    high_water_.store(t, std::memory_order_release);
    generation_.store(fresh_generation(), std::memory_order_release);
  }

 private:
  /// The thread-local override installed by the fiber engine (nullptr when
  /// the thread runs its own implicit context).
  static LaneMap*& active_override() {
    thread_local LaneMap* override_map = nullptr;
    return override_map;
  }

  /// The calling thread's active lane map: the installed override, or the
  /// thread's implicit map.
  static LaneMap& active_map() {
    thread_local LaneMap implicit;
    LaneMap* override_map = active_override();
    return override_map != nullptr ? *override_map : implicit;
  }

  const std::shared_ptr<Lane>& lane_in(LaneMap& map) const {
    std::shared_ptr<Lane>& slot = map.slots_[this];
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    if (!slot || slot->generation != generation) {
      // A fresh Lane object per generation, not a reused one: dropping the
      // old shared_ptr expires its registry entry, so a reset() can never
      // leave one Lane registered twice.
      slot = std::make_shared<Lane>();
      slot->generation = generation;
      slot->id = fresh_lane_id();
      slot->time.store(high_water_.load(std::memory_order_acquire),
                       std::memory_order_release);
      std::lock_guard<std::mutex> lock(registry_mutex_);
      registry_.push_back(slot);
    }
    return slot;
  }

  /// Publish a lane's new time: immediately outside a batch, deferred (one
  /// flush per clock per slice) inside one.
  void publish(LaneMap& map, const std::shared_ptr<Lane>& slot,
               usec_t t) const {
    if (map.batching_) {
      if (!slot->deferred) {
        slot->deferred = true;
        map.deferred_.push_back({this, slot});
      }
      return;
    }
    raise_high_water(t);
  }

  void raise_high_water(usec_t t) const {
    usec_t observed = high_water_.load(std::memory_order_relaxed);
    while (observed < t &&
           !high_water_.compare_exchange_weak(observed, t,
                                              std::memory_order_acq_rel)) {
    }
  }

  /// Process-unique generation numbers. Lanes are keyed by clock address in
  /// a thread-local map, and threads outlive clocks (the main thread builds
  /// one Session after another): if a new clock reused both the heap address
  /// *and* the generation of a dead one, a surviving thread's stale lane
  /// would be mistaken for current and its old time would bleed into the new
  /// simulation. Drawing every generation — initial or reset — from one
  /// process-wide counter makes that aliasing impossible.
  static std::uint64_t fresh_generation() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  static std::uint64_t fresh_lane_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Mutable: deferred batch flushes publish through const clock pointers.
  mutable std::atomic<usec_t> high_water_{0.0};
  std::atomic<std::uint64_t> generation_{fresh_generation()};
  mutable std::mutex registry_mutex_;
  mutable std::vector<std::weak_ptr<Lane>> registry_;
};

}  // namespace madmpi::sim

