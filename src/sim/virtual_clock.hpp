// Per-node virtual clocks with per-thread lanes.
//
// Ranks, polling threads and temporary protocol threads are real OS
// threads, but time is simulated. A naive single clock per node breaks
// causality under concurrency: a polling thread that synchronizes to a
// late arrival would inflate the departure timestamps of *independent*
// work other threads do on the same node (and the inflation depends on
// host scheduling — goodbye determinism).
//
// So each (thread, clock) pair owns a *lane*: the thread's causal time on
// that node. advance() and sync_to() act on the caller's lane; causal
// edges between threads are expressed explicitly — message arrival
// timestamps, semaphore release stamps, and bind_lane() at thread spawn.
// The clock itself keeps a monotone high-water mark over all lanes, which
// is what external observers (tests, stats) read.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace madmpi::sim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(usec_t start) { reset(start); }

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// The calling thread's causal time on this clock. A thread's first
  /// touch adopts the current high-water mark (right for observers and
  /// sequential phases; causally-spawned threads use bind_lane instead).
  usec_t now() const { return lane().time; }

  /// Charge `dt` microseconds of local work to the caller's lane.
  usec_t advance(usec_t dt) {
    Lane& lane_ref = lane();
    lane_ref.time += dt;
    raise_high_water(lane_ref.time);
    return lane_ref.time;
  }

  /// Move the caller's lane forward to at least `t` (message arrival,
  /// semaphore release stamp, ...). Never moves backwards.
  usec_t sync_to(usec_t t) {
    Lane& lane_ref = lane();
    if (lane_ref.time < t) {
      lane_ref.time = t;
      raise_high_water(t);
    }
    return lane_ref.time;
  }

  /// Set the caller's lane explicitly — used at thread spawn to hand the
  /// new thread its causal birth time.
  void bind_lane(usec_t t) {
    Lane& lane_ref = lane();
    lane_ref.time = t;
    raise_high_water(t);
  }

  /// Largest time any lane has reached (what tests and stats observe).
  usec_t high_water() const {
    return high_water_.load(std::memory_order_acquire);
  }

  /// Restart from `t`: bumps the generation so every thread's stale lane
  /// reinitializes on next touch.
  void reset(usec_t t = 0.0) {
    high_water_.store(t, std::memory_order_release);
    generation_.store(fresh_generation(), std::memory_order_release);
  }

 private:
  struct Lane {
    usec_t time = 0.0;
    std::uint64_t generation = 0;
  };

  Lane& lane() const {
    thread_local std::unordered_map<const VirtualClock*, Lane> lanes;
    Lane& lane_ref = lanes[this];
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    if (lane_ref.generation != generation) {
      lane_ref.generation = generation;
      lane_ref.time = high_water();
    }
    return lane_ref;
  }

  void raise_high_water(usec_t t) {
    usec_t observed = high_water_.load(std::memory_order_relaxed);
    while (observed < t &&
           !high_water_.compare_exchange_weak(observed, t,
                                              std::memory_order_acq_rel)) {
    }
  }

  /// Process-unique generation numbers. Lanes are keyed by clock address in
  /// a thread-local map, and threads outlive clocks (the main thread builds
  /// one Session after another): if a new clock reused both the heap address
  /// *and* the generation of a dead one, a surviving thread's stale lane
  /// would be mistaken for current and its old time would bleed into the new
  /// simulation. Drawing every generation — initial or reset — from one
  /// process-wide counter makes that aliasing impossible.
  static std::uint64_t fresh_generation() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::atomic<usec_t> high_water_{0.0};
  std::atomic<std::uint64_t> generation_{fresh_generation()};
};

}  // namespace madmpi::sim
