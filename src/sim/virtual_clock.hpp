// Per-node virtual clocks with per-thread lanes.
//
// Ranks, polling threads and temporary protocol threads are real OS
// threads, but time is simulated. A naive single clock per node breaks
// causality under concurrency: a polling thread that synchronizes to a
// late arrival would inflate the departure timestamps of *independent*
// work other threads do on the same node (and the inflation depends on
// host scheduling — goodbye determinism).
//
// So each (thread, clock) pair owns a *lane*: the thread's causal time on
// that node. advance() and sync_to() act on the caller's lane; causal
// edges between threads are expressed explicitly — message arrival
// timestamps, semaphore release stamps, and bind_lane() at thread spawn.
// The clock itself keeps a monotone high-water mark over all lanes, which
// is what external observers (tests, stats) read.
//
// lanes() exposes the live lanes themselves: the schedule-exploration
// harness and the progress watchdog use it to see whether *any* thread on
// a node is still advancing (a cheap progress fingerprint) instead of
// guessing from the high-water mark alone, which a single busy lane can
// pin while every other lane is stuck.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace madmpi::sim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(usec_t start) { reset(start); }

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// One live lane as seen by an observer: a process-unique id (stable for
  /// the lane's lifetime, so successive snapshots correlate) and the
  /// lane's current causal time.
  struct LaneInfo {
    std::uint64_t id = 0;
    usec_t time = 0.0;
  };

  /// The calling thread's causal time on this clock. A thread's first
  /// touch adopts the current high-water mark (right for observers and
  /// sequential phases; causally-spawned threads use bind_lane instead).
  usec_t now() const { return lane().time.load(std::memory_order_relaxed); }

  /// Charge `dt` microseconds of local work to the caller's lane.
  usec_t advance(usec_t dt) {
    Lane& lane_ref = lane();
    const usec_t t = lane_ref.time.load(std::memory_order_relaxed) + dt;
    lane_ref.time.store(t, std::memory_order_release);
    raise_high_water(t);
    return t;
  }

  /// Move the caller's lane forward to at least `t` (message arrival,
  /// semaphore release stamp, ...). Never moves backwards.
  usec_t sync_to(usec_t t) {
    Lane& lane_ref = lane();
    const usec_t current = lane_ref.time.load(std::memory_order_relaxed);
    if (current < t) {
      lane_ref.time.store(t, std::memory_order_release);
      raise_high_water(t);
      return t;
    }
    return current;
  }

  /// Set the caller's lane explicitly — used at thread spawn to hand the
  /// new thread its causal birth time.
  void bind_lane(usec_t t) {
    lane().time.store(t, std::memory_order_release);
    raise_high_water(t);
  }

  /// Largest time any lane has reached (what tests and stats observe).
  usec_t high_water() const {
    return high_water_.load(std::memory_order_acquire);
  }

  /// Snapshot of every live lane of the current generation, sorted by lane
  /// id. Lanes of exited threads drop out (their shared state expires with
  /// the thread-local map); lanes from before the last reset() are
  /// filtered by generation. Times are racy reads of other threads' lanes
  /// — fine for progress detection, not for causal reasoning.
  std::vector<LaneInfo> lanes() const {
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    std::vector<LaneInfo> out;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto survivor = registry_.begin();
    for (auto it = registry_.begin(); it != registry_.end(); ++it) {
      std::shared_ptr<Lane> strong = it->lock();
      if (!strong) continue;  // thread exited: prune
      // Guard the self-position case: weak_ptr move-assignment onto itself
      // empties it (libstdc++ releases before stealing), which would
      // silently deregister a live lane.
      if (survivor != it) *survivor = std::move(*it);
      ++survivor;
      if (strong->generation != generation) continue;
      out.push_back(
          {strong->id, strong->time.load(std::memory_order_acquire)});
    }
    registry_.erase(survivor, registry_.end());
    std::sort(out.begin(), out.end(),
              [](const LaneInfo& a, const LaneInfo& b) { return a.id < b.id; });
    return out;
  }

  /// Restart from `t`: bumps the generation so every thread's stale lane
  /// reinitializes on next touch.
  void reset(usec_t t = 0.0) {
    high_water_.store(t, std::memory_order_release);
    generation_.store(fresh_generation(), std::memory_order_release);
  }

 private:
  struct Lane {
    std::atomic<usec_t> time{0.0};
    std::uint64_t generation = 0;
    std::uint64_t id = 0;
  };

  Lane& lane() const {
    thread_local std::unordered_map<const VirtualClock*,
                                    std::shared_ptr<Lane>>
        lanes;
    std::shared_ptr<Lane>& slot = lanes[this];
    const std::uint64_t generation =
        generation_.load(std::memory_order_acquire);
    if (!slot || slot->generation != generation) {
      // A fresh Lane object per generation, not a reused one: dropping the
      // old shared_ptr expires its registry entry, so a reset() can never
      // leave one Lane registered twice.
      slot = std::make_shared<Lane>();
      slot->generation = generation;
      slot->id = fresh_lane_id();
      slot->time.store(high_water(), std::memory_order_release);
      std::lock_guard<std::mutex> lock(registry_mutex_);
      registry_.push_back(slot);
    }
    return *slot;
  }

  void raise_high_water(usec_t t) {
    usec_t observed = high_water_.load(std::memory_order_relaxed);
    while (observed < t &&
           !high_water_.compare_exchange_weak(observed, t,
                                              std::memory_order_acq_rel)) {
    }
  }

  /// Process-unique generation numbers. Lanes are keyed by clock address in
  /// a thread-local map, and threads outlive clocks (the main thread builds
  /// one Session after another): if a new clock reused both the heap address
  /// *and* the generation of a dead one, a surviving thread's stale lane
  /// would be mistaken for current and its old time would bleed into the new
  /// simulation. Drawing every generation — initial or reset — from one
  /// process-wide counter makes that aliasing impossible.
  static std::uint64_t fresh_generation() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  static std::uint64_t fresh_lane_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::atomic<usec_t> high_water_{0.0};
  std::atomic<std::uint64_t> generation_{fresh_generation()};
  mutable std::mutex registry_mutex_;
  mutable std::vector<std::weak_ptr<Lane>> registry_;
};

}  // namespace madmpi::sim

