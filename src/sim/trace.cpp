#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace madmpi::sim {

const char* trace_category_name(TraceCategory category) {
  switch (category) {
    case TraceCategory::kSend: return "send";
    case TraceCategory::kArrive: return "arrive";
    case TraceCategory::kDispatch: return "dispatch";
    case TraceCategory::kMatch: return "match";
    case TraceCategory::kComplete: return "complete";
    case TraceCategory::kRelay: return "relay";
    case TraceCategory::kDrop: return "drop";
    case TraceCategory::kRetry: return "retry";
    case TraceCategory::kFailover: return "failover";
  }
  return "?";
}

void Tracer::record(usec_t time_us, node_id_t node, TraceCategory category,
                    std::uint64_t bytes, const char* label) {
  TraceEvent event;
  event.time_us = time_us;
  event.node = node;
  event.category = category;
  event.bytes = bytes;
  std::strncpy(event.label, label, sizeof event.label - 1);

  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string Tracer::to_csv() const {
  auto events = snapshot();
  // Total order over the event *content*, not just time: events recorded
  // by concurrent threads land in the buffer in host-scheduling order, so
  // a time-only sort would leave ties in a nondeterministic order and the
  // CSV would differ between replays of the same seed. Every field
  // participates in the key, making the rendered trace a pure function of
  // the set of events.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time_us != b.time_us) return a.time_us < b.time_us;
                     if (a.node != b.node) return a.node < b.node;
                     if (a.category != b.category) {
                       return a.category < b.category;
                     }
                     if (a.bytes != b.bytes) return a.bytes < b.bytes;
                     return std::strcmp(a.label, b.label) < 0;
                   });
  std::string out = "time_us,node,category,bytes,label\n";
  char line[128];
  for (const auto& event : events) {
    std::snprintf(line, sizeof line, "%.3f,%d,%s,%llu,%s\n", event.time_us,
                  event.node, trace_category_name(event.category),
                  static_cast<unsigned long long>(event.bytes), event.label);
    out += line;
  }
  return out;
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace madmpi::sim
