// Calibrated network cost models.
//
// Each 2001-era NIC/protocol pair from the paper (DEC 21140 Fast-Ethernet +
// TCP, Dolphin D310 SCI + SISCI, LANai-4 Myrinet + BIP) is modelled by a
// LinkCostModel whose constants are calibrated against the paper's Table 1
// raw numbers (TCP 121 us / 11.2 MB/s, SISCI 4.4 us / 82.6 MB/s, BIP 9.2 us
// / 122 MB/s). All higher layers (Madeleine, MPI devices) add their own
// measured software overheads on top of these raw-driver costs.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/types.hpp"

namespace madmpi::sim {

struct FaultPlan;

/// Host memcpy rate of the simulated machines (PII-450, ~300 MB/s). Used
/// for device-level bounce copies that are not part of a NIC's own model.
inline constexpr usec_t kHostCopyUsPerByte = 0.0032;

/// Wire protocols supported by the simulated fabric. Mirrors the paper's
/// three test networks plus in-node shared memory.
enum class Protocol {
  kTcp,    // TCP over Fast-Ethernet
  kSisci,  // SISCI over SCI (Dolphin)
  kBip,    // BIP over Myrinet (LANai 4.x)
  kShmem,  // intra-node shared memory (smp_plug substrate)
};

const char* protocol_name(Protocol protocol);

/// Per-network cost constants, in microseconds and bytes/microsecond.
struct LinkCostModel {
  Protocol protocol = Protocol::kTcp;

  /// One-way zero-payload cost charged on the sender (system call / PIO
  /// initiation / descriptor post).
  usec_t send_overhead_us = 0.0;

  /// One-way zero-payload cost charged on the receiver once the frame is
  /// observed (interrupt / completion handling).
  usec_t recv_overhead_us = 0.0;

  /// Wire propagation + switch latency (charged once per frame).
  usec_t wire_latency_us = 0.0;

  /// Serialized throughput of the medium in bytes per microsecond.
  double bandwidth_bytes_per_us = 1.0;

  /// Per-MTU-segment processing cost (TCP segmentation, BIP packetization).
  usec_t per_segment_us = 0.0;
  std::size_t mtu_bytes = 1500;

  /// memcpy cost per byte when a copy is required on either side.
  usec_t copy_us_per_byte = 0.0;

  /// Cost of one unsuccessful poll of this network (select() for TCP is
  /// expensive; SISCI/BIP memory polls are cheap). Drives Figure 9.
  usec_t poll_us = 0.0;

  /// True when the NIC can deliver a frame directly into a user buffer
  /// posted in advance (zero-copy receive, used by rendezvous mode).
  bool supports_zero_copy = false;

  /// Largest payload the driver accepts in a single "short" operation that
  /// travels with its completion notification (BIP short messages).
  std::size_t short_message_limit = 0;

  /// Extra fixed cost for payloads above short_message_limit (switching to
  /// the long-message path; reproduces the BIP 1 KB anomaly of Fig. 8b).
  usec_t long_path_extra_us = 0.0;

  /// Cost of each additional block transaction within one Madeleine message
  /// beyond the first (the paper measures this "extra packing operation" at
  /// ~25 us on TCP, 6.5 us on SISCI, 4.5 us on BIP — Section 5).
  usec_t per_block_us = 0.0;

  /// One-sided (RMA) extension — used only by the ch_mad RMA verbs, so
  /// existing two-sided charges stay bit-identical (test_calibration).
  /// Origin-side cost to initiate one remote put/get/accumulate: a PIO
  /// store-stream setup on SCI, a DMA descriptor post on Myrinet, a
  /// socket write on the TCP emulation.
  usec_t rma_put_us = 0.0;

  /// Target-side landing cost per byte for one-sided data: zero when the
  /// NIC writes directly into the registered window (SISCI remote-mapped
  /// PIO), a DMA touch on BIP, a full kernel bounce on TCP.
  usec_t rma_landing_us_per_byte = 0.0;

  /// Collective-offload extension — the NIC-side combine/forward engine of
  /// the Quadrics/Myrinet NIC-barrier papers, modeled for the hierarchical
  /// collective engine. Only consulted by the offloaded barrier/bcast
  /// path, so every two-sided and RMA charge stays bit-identical.
  /// True when the NIC firmware can run a combine/forward tree itself
  /// (programmable LANai, SCI mapped atomic segments); false for kernel
  /// TCP, which has no NIC-resident engine to offload to.
  bool supports_coll_offload = false;

  /// Host-side cost to post one collective descriptor to the NIC (arm the
  /// combine slot / write the trigger word).
  usec_t coll_post_us = 0.0;

  /// NIC-to-NIC cost of one combine/forward hop in the offloaded tree
  /// (firmware dispatch + wire, no host involvement).
  usec_t coll_hop_us = 0.0;

  /// NIC-side forward bandwidth for offloaded bcast payloads, in bytes per
  /// microsecond (payload staged once, streamed along the NIC tree).
  double coll_bytes_per_us = 1.0;

  /// Completion-notification cost charged on each host once the NIC tree
  /// finishes (mapped flag observation / interrupt).
  usec_t coll_notify_us = 0.0;

  /// Timing-fault injection: maximum extra per-frame delay, applied as a
  /// deterministic pseudo-random amount derived from the frame identity.
  /// Zero (default) disables it. Used by robustness tests to prove the
  /// protocols are correct under arbitrary timing perturbation.
  usec_t jitter_us = 0.0;

  /// Optional fault schedule (frame drops, outages, link kill). Null
  /// (default) means a perfect link. Attach via Nic::mutable_model();
  /// WirePaths reference NIC models live, so attachment reaches existing
  /// paths. See sim/fault.hpp.
  std::shared_ptr<FaultPlan> fault_plan;

  std::string name() const { return protocol_name(protocol); }

  /// Number of MTU segments needed for `size` payload bytes (>= 1).
  std::size_t segments(std::size_t size) const;

  /// Sender-side cost to inject `size` bytes (overheads + copies; excludes
  /// wire time). `copied` states whether the driver had to stage the data
  /// through an intermediate buffer.
  usec_t send_cost(std::size_t size, bool copied) const;

  /// Receiver-side cost once the frame has arrived. `copied` states whether
  /// the payload lands in a bounce buffer and must be copied out.
  usec_t recv_cost(std::size_t size, bool copied) const;

  /// Pure wire time for `size` bytes: latency + serialization.
  usec_t wire_time(std::size_t size) const;
};

/// Factory functions returning models calibrated to the paper's testbed.
LinkCostModel tcp_fast_ethernet_model();
LinkCostModel sisci_sci_model();
LinkCostModel bip_myrinet_model();
LinkCostModel shmem_model();

LinkCostModel model_for(Protocol protocol);

}  // namespace madmpi::sim
