// Receive endpoints of the simulated fabric.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "sim/frame.hpp"

namespace madmpi::sim {

/// A Port is an addressable receive queue on a node. Drivers allocate one
/// port per Madeleine channel (or per baseline-device endpoint); all remote
/// peers of that channel deliver into the same port, which preserves
/// per-connection FIFO order (a single queue cannot reorder a source).
class Port {
 public:
  Port() = default;
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Deliver a frame (called by WirePath::transmit).
  void deliver(Frame frame) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      frames_.push_back(std::move(frame));
    }
    available_.notify_all();
  }

  /// Non-blocking take (used by polling loops).
  std::optional<Frame> try_take() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (frames_.empty()) return std::nullopt;
    Frame frame = std::move(frames_.front());
    frames_.pop_front();
    return frame;
  }

  /// Blocking take; empty optional means the port was closed and drained.
  std::optional<Frame> take_blocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [this] { return closed_ || !frames_.empty(); });
    if (frames_.empty()) return std::nullopt;
    Frame frame = std::move(frames_.front());
    frames_.pop_front();
    return frame;
  }

  bool has_frame() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !frames_.empty();
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return frames_.size();
  }

  /// Wakes blocked receivers; they drain remaining frames then observe EOF.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    available_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Frame> frames_;
  bool closed_ = false;
};

}  // namespace madmpi::sim
