// Wire frames exchanged over simulated circuits.
#pragma once

#include <cstdint>

#include "common/slab_pool.hpp"
#include "common/types.hpp"

namespace madmpi::sim {

/// One block of a message as it travels the simulated wire. Drivers may
/// aggregate several user blocks into one frame (TCP) or send one frame per
/// block (zero-copy paths on SISCI/BIP).
struct Frame {
  node_id_t src_node = kInvalidNode;
  node_id_t dst_node = kInvalidNode;

  /// Circuit-local sequence number (debugging / ordering assertions).
  std::uint64_t seq = 0;

  /// Driver-defined frame kind (e.g. control vs data).
  std::uint16_t kind = 0;

  /// Index of the user block within its message, and whether more frames of
  /// the same message follow. Lets receivers reassemble multi-frame messages.
  std::uint16_t block_index = 0;
  bool last_of_message = true;

  /// True when the frame was DMA'd straight into a posted user buffer
  /// (receiver must not charge a bounce-copy for it).
  bool zero_copy = false;

  /// Retransmission attempt (0 = first transmission). Part of the frame
  /// identity for deterministic fault decisions: each retry is an
  /// independent drop trial under a FaultPlan.
  std::uint32_t attempt = 0;

  /// Virtual timestamps stamped by the sending driver / the link.
  usec_t depart_time = 0.0;
  usec_t arrival_time = 0.0;

  /// Scatter-gather payload: refcounted chunk views into pooled slabs.
  /// Copying a frame (retransmission under fault injection) bumps slab
  /// refcounts instead of duplicating bytes.
  ChunkList payload;
};

}  // namespace madmpi::sim
