// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan attaches to a LinkCostModel (and therefore to every WirePath
// built from the owning NIC) and decides, per frame, whether the fabric
// loses it: seeded pseudo-random frame drops, transient outage windows on
// the virtual clock, and permanent link kill. All decisions are pure
// functions of the plan's seed and the frame identity — no wall clock, no
// RNG state — so a run with a given plan is bit-identical across repeats.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/frame.hpp"

namespace madmpi::sim {

/// Link/driver health as observed by the layers above: healthy (no losses
/// seen), degraded (drops observed, retransmission working), dead (delivery
/// gave up permanently).
enum class LinkHealth : std::uint8_t {
  kHealthy,
  kDegraded,
  kDead,
};

const char* link_health_name(LinkHealth health);

/// One fault clause. `src`/`dst` filter the directed node pair it applies
/// to; kInvalidNode matches any node.
struct FaultRule {
  node_id_t src = kInvalidNode;
  node_id_t dst = kInvalidNode;

  /// Probability in [0, 1] that a matching frame is lost in transit.
  double drop_probability = 0.0;

  /// Transient outage: every frame departing in [outage_start_us,
  /// outage_end_us) is lost. Empty window (start >= end) disables it.
  usec_t outage_start_us = 0.0;
  usec_t outage_end_us = 0.0;

  /// Permanent link kill: every frame departing at or after this virtual
  /// time is lost, forever.
  static constexpr usec_t kNever = 1e30;
  usec_t kill_at_us = kNever;

  bool applies_to(node_id_t s, node_id_t d) const {
    return (src == kInvalidNode || src == s) &&
           (dst == kInvalidNode || dst == d);
  }
};

/// Retransmission policy the delivery layer (net::Endpoint) follows when a
/// frame is lost: wait rto_us * backoff^attempt (virtual time), resend, up
/// to max_attempts total transmissions.
struct RetryPolicy {
  usec_t rto_us = 100.0;
  double backoff = 2.0;
  int max_attempts = 8;

  usec_t delay_for(int attempt) const;
};

/// A seeded, declarative fault schedule. Attach with
/// `nic.mutable_model().fault_plan = std::make_shared<FaultPlan>(...)`;
/// WirePaths reference NIC models live, so the plan reaches every existing
/// path of that NIC immediately.
struct FaultPlan {
  explicit FaultPlan(std::uint64_t seed = 0) : seed(seed) {}

  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
  RetryPolicy retry;

  /// Schedule exploration: slides every rule's time window (outages and
  /// kill instants) forward by this much virtual time. Letting the
  /// ScheduleController move a kill across protocol phase boundaries
  /// (eager send vs rendezvous handshake vs data push) without rewriting
  /// the plan's rules is what makes fault timing a perturbable choice
  /// point. Pure drops are timeless and unaffected.
  usec_t fire_offset_us = 0.0;

  // ---- builder helpers (return *this for chaining) --------------------
  FaultPlan& drop(double probability, node_id_t src = kInvalidNode,
                  node_id_t dst = kInvalidNode);
  FaultPlan& outage(usec_t start_us, usec_t end_us,
                    node_id_t src = kInvalidNode,
                    node_id_t dst = kInvalidNode);
  FaultPlan& kill_at(usec_t when_us, node_id_t src = kInvalidNode,
                     node_id_t dst = kInvalidNode);
  FaultPlan& offset_by(usec_t offset_us);

  // ---- queries ---------------------------------------------------------
  /// fire_offset_us plus the active ScheduleController's kFaultOffset
  /// perturbation for this plan's seed (zero when no controller is
  /// installed). Every time window below is slid by this much.
  usec_t effective_offset() const;

  /// True when the directed pair is permanently killed at virtual time `t`
  /// (retrying is pointless; the delivery layer gives up immediately).
  bool dead(node_id_t src, node_id_t dst, usec_t t) const;

  /// True when the fabric loses this frame: permanent kill, outage window
  /// at the frame's departure time, or a seeded pseudo-random drop derived
  /// from (seed, src, dst, seq, kind, block_index, attempt). Including the
  /// attempt counter makes each retransmission an independent trial.
  bool lost(const Frame& frame) const;
};

}  // namespace madmpi::sim
