#include "sim/fabric.hpp"

#include <algorithm>

#include "common/datapath_stats.hpp"
#include "sim/fault.hpp"

namespace madmpi::sim {

usec_t WirePath::transmit(Frame frame, const TransmitHints& hints) {
  const LinkCostModel& m = *model_;
  const std::size_t n = frame.payload.size();

  // Per-byte rate: wire serialization plus amortized per-segment processing,
  // with staging copies pipelined segment-by-segment (the max, not the sum,
  // of the stage rates — the slowest pipeline stage dominates).
  double per_byte = 1.0 / m.bandwidth_bytes_per_us +
                    m.per_segment_us / static_cast<double>(m.mtu_bytes);
  if (hints.copied_send) per_byte = std::max(per_byte, m.copy_us_per_byte);
  if (hints.copied_recv) per_byte = std::max(per_byte, m.copy_us_per_byte);
  // Modeled-copy accounting: the bytes the *simulated hardware* bounces
  // through staging memory on this transfer. Independent of (and unchanged
  // by) how many copies our host-side implementation performs.
  if (hints.copied_send) DatapathStats::global().count_modeled_copy(n);
  if (hints.copied_recv) DatapathStats::global().count_modeled_copy(n);

  const usec_t occupation = static_cast<double>(n) * per_byte;
  const usec_t start = serializer_->reserve(frame.depart_time, occupation);

  usec_t arrival =
      start + occupation + m.wire_latency_us + m.per_segment_us + hints.extra_us;
  if (m.short_message_limit != 0 && n > m.short_message_limit) {
    arrival += m.long_path_extra_us;
  }
  if (m.jitter_us > 0.0) {
    // Deterministic per-frame pseudo-jitter (splitmix64 of the frame
    // identity): reproducible timing faults, no RNG state.
    std::uint64_t x = frame.seq * 0x9e3779b97f4a7c15ULL +
                      (static_cast<std::uint64_t>(frame.src_node) << 32) +
                      static_cast<std::uint64_t>(frame.dst_node) +
                      frame.block_index;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    arrival += m.jitter_us *
               (static_cast<double>(x >> 11) * 0x1.0p-53);
  }

  frame.arrival_time = arrival;
  frame.zero_copy = !hints.copied_recv;
  dst_->deliver(std::move(frame));
  return arrival;
}

std::optional<usec_t> WirePath::try_transmit(Frame frame,
                                             const TransmitHints& hints) {
  const FaultPlan* plan = model_->fault_plan.get();
  if (plan != nullptr && plan->lost(frame)) {
    // The frame still occupied the sender and (partially) the medium; we
    // keep the model simple and charge nothing to the serializer — the
    // dominant retry cost is the sender's timeout, not residual occupancy.
    return std::nullopt;
  }
  return transmit(std::move(frame), hints);
}

void WirePath::deliver_direct(Frame frame) {
  frame.arrival_time = frame.depart_time;
  frame.zero_copy = false;
  dst_->deliver(std::move(frame));
}

Node& Fabric::add_node(std::string name, int cpus, bool big_endian) {
  const auto id = static_cast<node_id_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<Node>(id, std::move(name), cpus, big_endian));
  return *nodes_.back();
}

Node& Fabric::node(node_id_t id) {
  MADMPI_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Fabric::node(node_id_t id) const {
  MADMPI_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
  return *nodes_[static_cast<std::size_t>(id)];
}

Nic& Fabric::add_nic(node_id_t node, LinkCostModel model,
                     adapter_id_t adapter) {
  MADMPI_CHECK(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  const int index = static_cast<int>(nics_.size());
  nics_.push_back(std::make_unique<Nic>(index, node, adapter, model));
  return *nics_.back();
}

Nic* Fabric::find_nic(node_id_t node, Protocol protocol,
                      adapter_id_t adapter) {
  for (auto& nic : nics_) {
    if (nic->node() == node && nic->protocol() == protocol &&
        nic->adapter() == adapter) {
      return nic.get();
    }
  }
  return nullptr;
}

std::vector<Nic*> Fabric::nics_of(node_id_t node) {
  std::vector<Nic*> out;
  for (auto& nic : nics_) {
    if (nic->node() == node) out.push_back(nic.get());
  }
  return out;
}

Port& Fabric::make_port(node_id_t node) {
  MADMPI_CHECK(node >= 0 && static_cast<std::size_t>(node) < nodes_.size());
  ports_.push_back(std::make_unique<Port>());
  return *ports_.back();
}

WirePath Fabric::make_path(const Nic& src, const Nic& dst, Port& dst_port) {
  MADMPI_CHECK_MSG(src.protocol() == dst.protocol(),
                   "wire path requires matching protocols");
  std::lock_guard<std::mutex> lock(serializer_mutex_);
  auto key = std::make_pair(src.index(), dst.index());
  auto& slot = serializers_[key];
  if (!slot) slot = std::make_unique<LinkSerializer>();
  return WirePath(src.model(), *slot, dst_port);
}

void Fabric::close_all_ports() {
  for (auto& port : ports_) port->close();
}

}  // namespace madmpi::sim
