#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace madmpi::sim {

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTcp: return "TCP";
    case Protocol::kSisci: return "SISCI";
    case Protocol::kBip: return "BIP";
    case Protocol::kShmem: return "SHMEM";
  }
  return "?";
}

std::size_t LinkCostModel::segments(std::size_t size) const {
  if (size == 0) return 1;
  return (size + mtu_bytes - 1) / mtu_bytes;
}

usec_t LinkCostModel::send_cost(std::size_t size, bool copied) const {
  usec_t cost = send_overhead_us;
  if (copied) cost += static_cast<usec_t>(size) * copy_us_per_byte;
  return cost;
}

usec_t LinkCostModel::recv_cost(std::size_t size, bool copied) const {
  usec_t cost = recv_overhead_us;
  if (copied) cost += static_cast<usec_t>(size) * copy_us_per_byte;
  return cost;
}

usec_t LinkCostModel::wire_time(std::size_t size) const {
  // Fixed part: propagation plus the first segment's processing. The
  // remaining per-segment costs are folded into the per-byte rate so that
  // large transfers see the paper's sustained bandwidth.
  const double per_byte =
      1.0 / bandwidth_bytes_per_us +
      per_segment_us / static_cast<double>(mtu_bytes);
  usec_t t = wire_latency_us + per_segment_us +
             static_cast<double>(size) * per_byte;
  if (short_message_limit != 0 && size > short_message_limit) {
    t += long_path_extra_us;
  }
  return t;
}

// --- Calibration ------------------------------------------------------------
//
// Targets come from the paper (Table 1, raw Madeleine over each protocol):
//   TCP/Fast-Ethernet : 121 us one-way (4 B), 11.2 MB/s (8 MB message)
//   SISCI/SCI         : 4.4 us,              82.6 MB/s
//   BIP/Myrinet       : 9.2 us,              122  MB/s
// Raw Madeleine adds one pack/unpack pair (~0.3 us per side of CPU cost) on
// top of the raw driver, so the driver fixed path below is calibrated to
// (paper latency - 0.6 us). Bandwidth: effective rate = 1 / (1/bw + seg/mtu).

LinkCostModel tcp_fast_ethernet_model() {
  LinkCostModel m;
  m.protocol = Protocol::kTcp;
  m.send_overhead_us = 33.0;   // write() syscall + kernel TCP path
  m.recv_overhead_us = 33.0;   // read() syscall + wakeup
  m.wire_latency_us = 46.4;    // interrupt + stack + Fast-Ethernet wire
  m.bandwidth_bytes_per_us = 12.5;   // 100 Mb/s
  m.per_segment_us = 7.5;      // per-1460 B segment processing
  m.mtu_bytes = 1460;
  m.copy_us_per_byte = 0.0032;  // PII-450 memcpy ~300 MB/s
  m.poll_us = 15.0;             // select() is expensive (paper Sec. 3.3)
  m.supports_zero_copy = false; // kernel sockets always bounce
  m.short_message_limit = 0;
  // Extra block bookkeeping per pack beyond the first. Calibrated so the
  // ch_mad endpoint numbers land on Table 2 (0 B: 130 us, 4 B: 148.7 us);
  // the paper's own per-component estimate (21% ~ 25 us) does not sum to
  // its measured endpoints, so the endpoints win.
  m.per_block_us = 15.0;
  // One-sided emulation over sockets: a put is an ordinary write() and the
  // "landing" is a kernel bounce into the window.
  m.rma_put_us = 8.0;
  m.rma_landing_us_per_byte = 0.0032;
  return m;
}

LinkCostModel sisci_sci_model() {
  LinkCostModel m;
  m.protocol = Protocol::kSisci;
  m.send_overhead_us = 1.0;    // PIO write initiation
  m.recv_overhead_us = 1.0;    // mapped-memory completion check
  m.wire_latency_us = 1.25;    // SCI ringlet traversal
  m.bandwidth_bytes_per_us = 88.0;  // Dolphin D310 sustained PIO/DMA
  m.per_segment_us = 0.5;
  m.mtu_bytes = 8192;
  m.copy_us_per_byte = 0.0032;
  m.poll_us = 0.4;             // cheap mapped-segment poll
  m.supports_zero_copy = true; // DMA into a posted user buffer
  m.short_message_limit = 0;
  m.per_block_us = 6.5;        // extra PIO transaction per block
  // SCI is genuinely one-sided: the origin streams PIO stores into the
  // remote-mapped window, and the data lands without target-side work.
  m.rma_put_us = 0.4;
  m.rma_landing_us_per_byte = 0.0;
  // Offloaded collectives: SCI exposes remote-mapped atomic segments, so a
  // barrier/bcast tree can run as chained remote stores with no host on the
  // interior path. Arming a slot is one PIO store; each hop is a ringlet
  // traversal plus the remote-side fetch of the combine word.
  m.supports_coll_offload = true;
  m.coll_post_us = 0.6;
  m.coll_hop_us = 1.6;
  m.coll_bytes_per_us = 80.0;
  m.coll_notify_us = 0.4;
  return m;
}

LinkCostModel bip_myrinet_model() {
  LinkCostModel m;
  m.protocol = Protocol::kBip;
  m.send_overhead_us = 2.0;    // descriptor post to LANai
  m.recv_overhead_us = 2.4;
  m.wire_latency_us = 2.6;     // LANai firmware + Myrinet wire
  m.bandwidth_bytes_per_us = 136.0;  // 1.28 Gb/s link, firmware limited
  m.per_segment_us = 1.6;
  m.mtu_bytes = 4096;
  m.copy_us_per_byte = 0.0032;
  m.poll_us = 0.3;
  m.supports_zero_copy = true;
  // BIP distinguishes short messages (delivered through a preallocated
  // queue) from long ones (requiring a posted receive); crossing the limit
  // pays a fixed penalty, which reproduces the 1 KB notch of Figure 8b.
  m.short_message_limit = 1000;
  m.long_path_extra_us = 6.0;
  // Table 2 shows only a 2 us gap between 0 B and 4 B ch_mad latency, so
  // the effective extra-block cost is 2 us (the paper's 4.5 us estimate
  // again does not match its measured endpoints).
  m.per_block_us = 2.0;
  // LANai DMA into the registered window: descriptor post at the origin,
  // a light per-byte DMA touch at the target.
  m.rma_put_us = 2.5;
  m.rma_landing_us_per_byte = 0.0008;
  // Offloaded collectives: the LANai is fully programmable, so combine and
  // forward steps run in firmware (the NIC-based barrier literature). The
  // descriptor post is pricier than SCI's PIO store but hops avoid the
  // host entirely and stream at near link rate.
  m.supports_coll_offload = true;
  m.coll_post_us = 1.8;
  m.coll_hop_us = 2.2;
  m.coll_bytes_per_us = 120.0;
  m.coll_notify_us = 0.8;
  return m;
}

LinkCostModel shmem_model() {
  LinkCostModel m;
  m.protocol = Protocol::kShmem;
  m.send_overhead_us = 0.3;
  m.recv_overhead_us = 0.3;
  m.wire_latency_us = 0.0;
  m.bandwidth_bytes_per_us = 320.0;  // memcpy through a shared segment
  m.per_segment_us = 0.0;
  m.mtu_bytes = 1 << 20;
  m.copy_us_per_byte = 0.0032;
  m.poll_us = 0.2;
  m.supports_zero_copy = false;
  m.short_message_limit = 0;
  m.per_block_us = 0.5;
  m.rma_put_us = 0.3;  // store into the shared segment
  m.rma_landing_us_per_byte = 0.0;
  return m;
}

LinkCostModel model_for(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTcp: return tcp_fast_ethernet_model();
    case Protocol::kSisci: return sisci_sci_model();
    case Protocol::kBip: return bip_myrinet_model();
    case Protocol::kShmem: return shmem_model();
  }
  return tcp_fast_ethernet_model();
}

}  // namespace madmpi::sim
