// The simulated cluster fabric: nodes, NICs, serialized links, wire paths.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/cost_model.hpp"
#include "sim/frame.hpp"
#include "sim/node.hpp"
#include "sim/port.hpp"

namespace madmpi::sim {

class Fabric;

/// A network interface card installed in a node. Its cost model is a copy,
/// so tests can perturb one NIC without affecting others.
class Nic {
 public:
  Nic(int index, node_id_t node, adapter_id_t adapter, LinkCostModel model)
      : index_(index), node_(node), adapter_(adapter), model_(model) {}

  int index() const { return index_; }
  node_id_t node() const { return node_; }
  adapter_id_t adapter() const { return adapter_; }
  Protocol protocol() const { return model_.protocol; }
  const LinkCostModel& model() const { return model_; }
  LinkCostModel& mutable_model() { return model_; }

 private:
  int index_;
  node_id_t node_;
  adapter_id_t adapter_;
  LinkCostModel model_;
};

/// Serialization state of one unidirectional physical link: a transfer
/// occupies the medium for its serialization time, delaying later frames.
class LinkSerializer {
 public:
  /// Reserve the medium starting no earlier than `earliest` for
  /// `occupation` microseconds; returns the actual start time.
  usec_t reserve(usec_t earliest, usec_t occupation) {
    std::lock_guard<std::mutex> lock(mutex_);
    const usec_t start = std::max(earliest, busy_until_);
    busy_until_ = start + occupation;
    return start;
  }

  usec_t busy_until() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return busy_until_;
  }

 private:
  mutable std::mutex mutex_;
  usec_t busy_until_ = 0.0;
};

/// Hints the sending driver passes to the wire-time computation.
struct TransmitHints {
  /// Sender stages the payload through an intermediate buffer (its memcpy
  /// pipelines with segment transmission).
  bool copied_send = false;
  /// Receiver side lands in a bounce buffer (kernel socket buffer, BIP
  /// short-message queue) rather than a posted user buffer.
  bool copied_recv = false;
  /// Additional fixed delay (protocol handshakes modelled by the driver).
  usec_t extra_us = 0.0;
};

/// A unidirectional timed path from a source NIC to a destination port.
/// transmit() computes the frame's arrival time from the NIC's cost model
/// and the link serializer, stamps it, and delivers to the port.
class WirePath {
 public:
  WirePath(const LinkCostModel& model, LinkSerializer& serializer, Port& dst)
      : model_(&model), serializer_(&serializer), dst_(&dst) {}

  /// `frame.depart_time` must be set by the caller (sender clock after its
  /// send overhead). Returns the computed arrival time.
  usec_t transmit(Frame frame, const TransmitHints& hints = {});

  /// Fault-aware transmit: consults the source model's FaultPlan and
  /// returns nullopt when the fabric loses the frame (drop, outage, dead
  /// link), leaving the medium unreserved past the partial transmission.
  /// Otherwise behaves exactly like transmit().
  std::optional<usec_t> try_transmit(Frame frame,
                                     const TransmitHints& hints = {});

  /// Deliver a frame to the destination port without charging wire costs,
  /// stamping arrival = departure. Used for sender-originated abort
  /// notifications after delivery gives up (out-of-band control plane).
  void deliver_direct(Frame frame);

  const LinkCostModel& model() const { return *model_; }

 private:
  const LinkCostModel* model_;
  LinkSerializer* serializer_;
  Port* dst_;
};

/// The fabric owns every node, NIC, port, and link-serialization state of a
/// simulated cluster. Drivers are built on top of it.
class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Node& add_node(std::string name, int cpus = 2, bool big_endian = false);
  Node& node(node_id_t id);
  const Node& node(node_id_t id) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Install a NIC with the given (typically calibrated) cost model.
  Nic& add_nic(node_id_t node, LinkCostModel model,
               adapter_id_t adapter = 0);
  Nic& add_nic(node_id_t node, Protocol protocol, adapter_id_t adapter = 0) {
    return add_nic(node, model_for(protocol), adapter);
  }

  /// First NIC of `protocol` on `node`, or nullptr.
  Nic* find_nic(node_id_t node, Protocol protocol, adapter_id_t adapter = 0);

  /// All NICs of a node.
  std::vector<Nic*> nics_of(node_id_t node);

  /// Allocate a receive port on a node. The fabric keeps ownership.
  Port& make_port(node_id_t node);

  /// Build a timed path src-NIC -> dst port. Both NICs must share a
  /// protocol; timing uses the source NIC's model. The per-direction
  /// serializer is shared by every path between the same NIC pair.
  WirePath make_path(const Nic& src, const Nic& dst, Port& dst_port);

  /// Close all ports (session teardown).
  void close_all_ports();

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Port>> ports_;

  std::mutex serializer_mutex_;
  std::map<std::pair<int, int>, std::unique_ptr<LinkSerializer>> serializers_;
};

}  // namespace madmpi::sim
