#include "sim/fault.hpp"

#include <cmath>

#include "sim/sched.hpp"

namespace madmpi::sim {
namespace {

// Finalizer from splitmix64 (same construction as the jitter hash in
// fabric.cpp): uncorrelated 64-bit output from structured input.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

const char* link_health_name(LinkHealth health) {
  switch (health) {
    case LinkHealth::kHealthy:
      return "healthy";
    case LinkHealth::kDegraded:
      return "degraded";
    case LinkHealth::kDead:
      return "dead";
  }
  return "unknown";
}

usec_t RetryPolicy::delay_for(int attempt) const {
  return rto_us * std::pow(backoff, attempt);
}

FaultPlan& FaultPlan::drop(double probability, node_id_t src, node_id_t dst) {
  FaultRule rule;
  rule.src = src;
  rule.dst = dst;
  rule.drop_probability = probability;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::outage(usec_t start_us, usec_t end_us, node_id_t src,
                             node_id_t dst) {
  FaultRule rule;
  rule.src = src;
  rule.dst = dst;
  rule.outage_start_us = start_us;
  rule.outage_end_us = end_us;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::kill_at(usec_t when_us, node_id_t src, node_id_t dst) {
  FaultRule rule;
  rule.src = src;
  rule.dst = dst;
  rule.kill_at_us = when_us;
  rules.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::offset_by(usec_t offset_us) {
  fire_offset_us = offset_us;
  return *this;
}

usec_t FaultPlan::effective_offset() const {
  usec_t offset = fire_offset_us;
  if (auto* sched = ScheduleController::current()) {
    // Pure in (controller seed, plan seed): every query of this plan in a
    // run sees the same slide, and a replay with the same MADMPI_SCHED_SEED
    // reproduces it exactly.
    offset += sched->fault_offset_us(seed);
  }
  return offset;
}

bool FaultPlan::dead(node_id_t src, node_id_t dst, usec_t t) const {
  const usec_t offset = effective_offset();
  for (const FaultRule& rule : rules) {
    if (rule.applies_to(src, dst) && t >= rule.kill_at_us + offset) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::lost(const Frame& frame) const {
  const usec_t t = frame.depart_time;
  const usec_t offset = effective_offset();
  for (const FaultRule& rule : rules) {
    if (!rule.applies_to(frame.src_node, frame.dst_node)) continue;
    if (t >= rule.kill_at_us + offset) return true;
    if (rule.outage_start_us < rule.outage_end_us &&
        t >= rule.outage_start_us + offset && t < rule.outage_end_us + offset) {
      return true;
    }
    if (rule.drop_probability > 0.0) {
      // Hash the frame identity (not its timing) so retransmissions —
      // which differ only in `attempt` — are independent trials and the
      // outcome does not depend on queueing delays.
      std::uint64_t h = seed;
      h = mix64(h ^ (static_cast<std::uint64_t>(frame.src_node) << 32 |
                     static_cast<std::uint64_t>(frame.dst_node)));
      h = mix64(h ^ frame.seq);
      h = mix64(h ^ (static_cast<std::uint64_t>(frame.kind) << 48 |
                     static_cast<std::uint64_t>(frame.block_index) << 32 |
                     static_cast<std::uint64_t>(frame.attempt)));
      if (unit_double(h) < rule.drop_probability) return true;
    }
  }
  return false;
}

}  // namespace madmpi::sim
