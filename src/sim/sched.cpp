#include "sim/sched.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace madmpi::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Retired controllers are kept alive for the life of the process: a hook
// may have loaded the active pointer an instant before uninstall(), and a
// few leaked controller objects per process beat a use-after-free under
// exactly the racy schedules this subsystem exists to explore.
std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<std::unique_ptr<ScheduleController>>& registry() {
  static std::vector<std::unique_ptr<ScheduleController>> controllers;
  return controllers;
}

std::atomic<ScheduleController*> g_current{nullptr};

void bootstrap_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    // An explicit install() beats the environment: the sweep runner
    // installs per-seed controllers long after the first current() call.
    if (g_current.load(std::memory_order_acquire) != nullptr) return;
    const char* value = std::getenv("MADMPI_SCHED_SEED");
    if (value == nullptr || *value == '\0') return;
    const std::uint64_t seed = std::strtoull(value, nullptr, 10);
    if (seed != 0) ScheduleController::install(seed);
  });
}

}  // namespace

const char* sched_choice_name(SchedChoice choice) {
  switch (choice) {
    case SchedChoice::kPollWakeup: return "poll-wakeup";
    case SchedChoice::kPollFrequency: return "poll-frequency";
    case SchedChoice::kDeliveryOrder: return "delivery-order";
    case SchedChoice::kCreditBatch: return "credit-batch";
    case SchedChoice::kFaultOffset: return "fault-offset";
    case SchedChoice::kFiberWake: return "fiber-wake";
    case SchedChoice::kCount: break;
  }
  return "?";
}

std::uint64_t ScheduleController::mix(SchedChoice choice, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c) {
  decisions_[static_cast<std::size_t>(choice)].fetch_add(
      1, std::memory_order_relaxed);
  // Chain the words through the finalizer instead of xoring them flat:
  // (a=1, b=2) must not collide with (a=2, b=1).
  std::uint64_t h = splitmix64(seed_ ^ (static_cast<std::uint64_t>(choice)
                                        << 56));
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  h = splitmix64(h ^ c);
  return h;
}

double ScheduleController::mix_unit(SchedChoice choice, std::uint64_t a,
                                    std::uint64_t b, std::uint64_t c) {
  return static_cast<double>(mix(choice, a, b, c) >> 11) * 0x1.0p-53;
}

usec_t ScheduleController::poll_wakeup_jitter_us(node_id_t node,
                                                 channel_id_t channel,
                                                 std::uint64_t wakeup_index) {
  if (!enabled(SchedChoice::kPollWakeup)) return 0.0;
  return 4.0 * mix_unit(SchedChoice::kPollWakeup,
                        static_cast<std::uint64_t>(node),
                        static_cast<std::uint64_t>(channel), wakeup_index);
}

usec_t ScheduleController::poll_frequency_jitter_us(node_id_t node,
                                                    channel_id_t channel,
                                                    usec_t base_cost_us) {
  if (!enabled(SchedChoice::kPollFrequency)) return 0.0;
  return 0.5 * base_cost_us *
         mix_unit(SchedChoice::kPollFrequency,
                  static_cast<std::uint64_t>(node),
                  static_cast<std::uint64_t>(channel), 0);
}

usec_t ScheduleController::delivery_bias_us(node_id_t dst, node_id_t src,
                                            std::uint64_t seq) {
  if (!enabled(SchedChoice::kDeliveryOrder)) return 0.0;
  return 5.0 * mix_unit(SchedChoice::kDeliveryOrder,
                        static_cast<std::uint64_t>(dst),
                        static_cast<std::uint64_t>(src), seq);
}

std::size_t ScheduleController::credit_batch_threshold(node_id_t me,
                                                       node_id_t origin,
                                                       std::uint64_t epoch,
                                                       std::size_t window) {
  if (!enabled(SchedChoice::kCreditBatch) || window < 4) return window / 2;
  const double unit = mix_unit(SchedChoice::kCreditBatch,
                               static_cast<std::uint64_t>(me),
                               static_cast<std::uint64_t>(origin), epoch);
  const auto quarter = window / 4;
  // [window/4, 3*window/4]: never zero (a zero threshold would flush a
  // credit packet per byte) and never the full window (which would
  // deadlock a sender waiting for credits the receiver never returns).
  return quarter + static_cast<std::size_t>(
                       unit * static_cast<double>(window - 2 * quarter + 1));
}

usec_t ScheduleController::fault_offset_us(std::uint64_t plan_seed) {
  if (!enabled(SchedChoice::kFaultOffset)) return 0.0;
  return 500.0 * mix_unit(SchedChoice::kFaultOffset, plan_seed, 0, 0);
}

std::size_t ScheduleController::fiber_wake_start(std::size_t shard,
                                                 std::uint64_t round,
                                                 std::size_t n) {
  if (n < 2 || !enabled(SchedChoice::kFiberWake)) return 0;
  return static_cast<std::size_t>(
      static_cast<double>(n) *
      mix_unit(SchedChoice::kFiberWake, shard, round, 0));
}

ScheduleController* ScheduleController::current() {
  bootstrap_from_env();
  return g_current.load(std::memory_order_acquire);
}

ScheduleController* ScheduleController::install(std::uint64_t seed,
                                                std::uint32_t mask) {
  if (seed == 0) {
    uninstall();
    return nullptr;
  }
  auto controller = std::make_unique<ScheduleController>(seed, mask);
  ScheduleController* raw = controller.get();
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(std::move(controller));
  }
  g_current.store(raw, std::memory_order_release);
  return raw;
}

void ScheduleController::uninstall() {
  g_current.store(nullptr, std::memory_order_release);
}

}  // namespace madmpi::sim
