#include "sim/topology.hpp"

#include <algorithm>
#include <sstream>

namespace madmpi::sim {

ClusterSpec ClusterSpec::homogeneous(int count, Protocol protocol,
                                     int ranks_per_node) {
  ClusterSpec spec;
  NetworkSpec net;
  net.protocol = protocol;
  for (int i = 0; i < count; ++i) {
    NodeSpec node;
    node.name = "node" + std::to_string(i);
    node.ranks = ranks_per_node;
    spec.nodes.push_back(node);
    net.members.push_back(node.name);
  }
  // A single machine has nothing to internetwork (and validate() rejects a
  // one-member network): all-smp clusters just carry no network at all.
  if (count > 1) spec.networks.push_back(std::move(net));
  return spec;
}

ClusterSpec ClusterSpec::cluster_of_clusters(int sci_nodes, int myri_nodes,
                                             int ranks_per_node) {
  ClusterSpec spec;
  NetworkSpec tcp{Protocol::kTcp, 0, {}};
  NetworkSpec sci{Protocol::kSisci, 0, {}};
  NetworkSpec myri{Protocol::kBip, 0, {}};
  for (int i = 0; i < sci_nodes; ++i) {
    NodeSpec node;
    node.name = "sci" + std::to_string(i);
    node.ranks = ranks_per_node;
    spec.nodes.push_back(node);
    tcp.members.push_back(node.name);
    sci.members.push_back(node.name);
  }
  for (int i = 0; i < myri_nodes; ++i) {
    NodeSpec node;
    node.name = "myri" + std::to_string(i);
    node.ranks = ranks_per_node;
    spec.nodes.push_back(node);
    tcp.members.push_back(node.name);
    myri.members.push_back(node.name);
  }
  spec.networks.push_back(std::move(tcp));
  if (sci_nodes > 1) spec.networks.push_back(std::move(sci));
  if (myri_nodes > 1) spec.networks.push_back(std::move(myri));
  return spec;
}

namespace {

Status parse_key_value(const std::string& token, const std::string& key,
                       int* out) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    return {ErrorCode::kInvalidArgument, "expected " + prefix + "N"};
  }
  try {
    *out = std::stoi(token.substr(prefix.size()));
  } catch (const std::exception&) {
    return {ErrorCode::kInvalidArgument, "bad integer in " + token};
  }
  return Status::ok();
}

}  // namespace

Status ClusterSpec::parse(const std::string& text, ClusterSpec* out) {
  ClusterSpec spec;
  std::istringstream stream(text);
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;  // blank line

    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (word == "node") {
      NodeSpec node;
      if (!(words >> node.name)) {
        return {ErrorCode::kInvalidArgument, "node needs a name" + where};
      }
      std::string option;
      while (words >> option) {
        Status status;
        if (option.rfind("cpus=", 0) == 0) {
          status = parse_key_value(option, "cpus", &node.cpus);
        } else if (option.rfind("ranks=", 0) == 0) {
          status = parse_key_value(option, "ranks", &node.ranks);
        } else if (option == "endian=big") {
          node.big_endian = true;
        } else if (option == "endian=little") {
          node.big_endian = false;
        } else {
          return {ErrorCode::kInvalidArgument,
                  "unknown node option " + option + where};
        }
        if (!status) return status;
      }
      spec.nodes.push_back(std::move(node));
    } else if (word == "network") {
      NetworkSpec net;
      std::string keyword;
      if (!(words >> keyword)) {
        return {ErrorCode::kInvalidArgument,
                "network needs a protocol" + where};
      }
      auto protocol = protocol_from_keyword(keyword);
      if (!protocol) {
        return {ErrorCode::kInvalidArgument,
                "unknown protocol " + keyword + where};
      }
      net.protocol = *protocol;
      std::string member;
      while (words >> member) {
        if (member.rfind("adapter=", 0) == 0) {
          int adapter = 0;
          if (auto status = parse_key_value(member, "adapter", &adapter);
              !status) {
            return status;
          }
          net.adapter = adapter;
        } else {
          net.members.push_back(member);
        }
      }
      spec.networks.push_back(std::move(net));
    } else {
      return {ErrorCode::kInvalidArgument, "unknown keyword " + word + where};
    }
  }
  if (auto status = spec.validate(); !status) return status;
  *out = std::move(spec);
  return Status::ok();
}

Status ClusterSpec::validate() const {
  if (nodes.empty()) {
    return {ErrorCode::kInvalidArgument, "cluster has no nodes"};
  }
  for (const auto& node : nodes) {
    if (node.ranks < 1 || node.cpus < 1) {
      return {ErrorCode::kInvalidArgument,
              "node " + node.name + " needs ranks >= 1 and cpus >= 1"};
    }
    const auto matches = std::count_if(
        nodes.begin(), nodes.end(),
        [&](const NodeSpec& other) { return other.name == node.name; });
    if (matches != 1) {
      return {ErrorCode::kInvalidArgument,
              "duplicate node name " + node.name};
    }
  }
  for (const auto& net : networks) {
    if (net.members.size() < 2) {
      return {ErrorCode::kInvalidArgument,
              "network " + std::string(protocol_keyword(net.protocol)) +
                  " needs at least 2 members"};
    }
    for (const auto& member : net.members) {
      if (!node_index(member)) {
        return {ErrorCode::kInvalidArgument,
                "network references unknown node " + member};
      }
    }
  }
  return Status::ok();
}

int ClusterSpec::total_ranks() const {
  int total = 0;
  for (const auto& node : nodes) total += node.ranks;
  return total;
}

std::optional<int> ClusterSpec::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::pair<int, int> ClusterSpec::rank_location(rank_t rank) const {
  MADMPI_CHECK(rank >= 0);
  int remaining = rank;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (remaining < nodes[i].ranks) {
      return {static_cast<int>(i), remaining};
    }
    remaining -= nodes[i].ranks;
  }
  fatal("rank " + std::to_string(rank) + " beyond cluster size");
}

std::vector<Protocol> ClusterSpec::common_protocols(int node_a,
                                                    int node_b) const {
  std::vector<Protocol> out;
  const std::string& name_a = nodes[static_cast<std::size_t>(node_a)].name;
  const std::string& name_b = nodes[static_cast<std::size_t>(node_b)].name;
  for (const auto& net : networks) {
    const bool has_a =
        std::find(net.members.begin(), net.members.end(), name_a) !=
        net.members.end();
    const bool has_b =
        std::find(net.members.begin(), net.members.end(), name_b) !=
        net.members.end();
    if (has_a && has_b &&
        std::find(out.begin(), out.end(), net.protocol) == out.end()) {
      out.push_back(net.protocol);
    }
  }
  return out;
}

std::optional<Protocol> protocol_from_keyword(const std::string& word) {
  if (word == "tcp" || word == "ethernet") return Protocol::kTcp;
  if (word == "sci" || word == "sisci") return Protocol::kSisci;
  if (word == "myrinet" || word == "bip") return Protocol::kBip;
  if (word == "shmem") return Protocol::kShmem;
  return std::nullopt;
}

const char* protocol_keyword(Protocol protocol) {
  switch (protocol) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kSisci: return "sci";
    case Protocol::kBip: return "myrinet";
    case Protocol::kShmem: return "shmem";
  }
  return "?";
}

}  // namespace madmpi::sim
