#include "common/stats.hpp"

#include <cstdio>

#include "common/status.hpp"

namespace madmpi {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  MADMPI_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void Series::add(double x, std::vector<double> ys) {
  MADMPI_CHECK(ys.size() == y_labels.size());
  points.push_back(SeriesPoint{x, std::move(ys)});
}

std::string Series::to_table() const {
  std::string out = "# " + x_label;
  for (const auto& label : y_labels) {
    out += "\t";
    out += label;
  }
  out += "\n";
  char buf[64];
  for (const auto& point : points) {
    std::snprintf(buf, sizeof buf, "%.0f", point.x);
    out += buf;
    for (double y : point.ys) {
      std::snprintf(buf, sizeof buf, "\t%.3f", y);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string Series::to_csv() const {
  std::string out = x_label;
  for (const auto& label : y_labels) {
    out += ",";
    out += label;
  }
  out += "\n";
  char buf[64];
  for (const auto& point : points) {
    std::snprintf(buf, sizeof buf, "%.0f", point.x);
    out += buf;
    for (double y : point.ys) {
      std::snprintf(buf, sizeof buf, ",%.3f", y);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::vector<std::size_t> power_of_two_sizes(std::size_t max_size) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= max_size; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace madmpi
