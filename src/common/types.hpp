// Fundamental aliases and small vocabulary types shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace madmpi {

/// Virtual time in microseconds. All simulated costs and clocks use this unit
/// (the paper reports latencies in microseconds and bandwidth in MB/s).
using usec_t = double;

/// Global node (machine) identifier inside a simulated cluster.
using node_id_t = std::int32_t;

/// MPI rank within a communicator.
using rank_t = std::int32_t;

/// Identifier of a Madeleine channel (one per protocol/adapter pair).
using channel_id_t = std::int32_t;

/// Identifier of a network adapter within a node.
using adapter_id_t = std::int32_t;

inline constexpr node_id_t kInvalidNode = -1;
inline constexpr rank_t kInvalidRank = -1;

/// Bytes as used on the wire.
using byte_span = std::span<const std::byte>;
using mutable_byte_span = std::span<std::byte>;

/// 1 MB as defined by the paper (Section 5.1: 1 MB = 2^20 bytes).
inline constexpr double kMegabyte = 1024.0 * 1024.0;

/// Convert an elapsed time and size into MB/s using the paper's convention.
constexpr double bandwidth_mb_s(std::size_t bytes, usec_t elapsed_us) {
  if (elapsed_us <= 0.0) return 0.0;
  return (static_cast<double>(bytes) / kMegabyte) / (elapsed_us * 1e-6);
}

}  // namespace madmpi
