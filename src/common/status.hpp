// Lightweight status / result types. The library reports recoverable errors
// through Status rather than exceptions; exceptions are reserved for
// programming errors (contract violations).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace madmpi {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotConnected,
  kChannelClosed,
  kTruncated,       // MPI_ERR_TRUNCATE equivalent
  kUnreachable,     // no channel between the two nodes
  kProtocol,        // malformed packet / sequence error
  kResourceLimit,
  kTimedOut,        // progress watchdog gave up on the operation
  kCancelled,       // operation cancelled by the user (MPI_Cancel)
  kProcFailed,      // a peer process failed (ULFM MPI_ERR_PROC_FAILED)
  kRevoked,         // communicator revoked (ULFM MPI_ERR_REVOKED)
  kInternal,
};

/// Human-readable name of an ErrorCode.
const char* error_code_name(ErrorCode code);

/// A success-or-error value with a message. Cheap to copy on success.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Abort the process with a message. Used for contract violations in paths
/// where throwing would corrupt the communication state machine.
[[noreturn]] void fatal(const std::string& message);

/// CHECK-style macro for invariants (enabled in all build types: these are
/// protocol-state invariants whose violation means memory corruption ahead).
#define MADMPI_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::madmpi::fatal(std::string("check failed: ") + #cond + " at " +    \
                      __FILE__ + ":" + std::to_string(__LINE__));         \
    }                                                                     \
  } while (0)

#define MADMPI_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::madmpi::fatal(std::string("check failed: ") + #cond + ": " +      \
                      (msg) + " at " + __FILE__ + ":" +                   \
                      std::to_string(__LINE__));                          \
    }                                                                     \
  } while (0)

}  // namespace madmpi
