// Growable byte buffer with typed append/read cursors. Used for packet
// headers and eager payload staging throughout the stack.
#pragma once

#include <cstring>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace madmpi {

/// Append-only binary writer. Values are stored in host byte order; the
/// datatype layer handles heterogeneity conversions above this level.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    append(&value, sizeof value);
  }

  void append(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  void append(byte_span data) { append(data.data(), data.size()); }

  std::size_t size() const { return bytes_.size(); }
  byte_span span() const { return {bytes_.data(), bytes_.size()}; }
  std::vector<std::byte> take() { return std::move(bytes_); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Sequential binary reader over a borrowed span.
class ByteReader {
 public:
  explicit ByteReader(byte_span data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T value{};
    MADMPI_CHECK_MSG(pos_ + sizeof value <= data_.size(),
                     "byte reader underflow");
    std::memcpy(&value, data_.data() + pos_, sizeof value);
    pos_ += sizeof value;
    return value;
  }

  void read(void* out, std::size_t size) {
    MADMPI_CHECK_MSG(pos_ + size <= data_.size(), "byte reader underflow");
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  byte_span remaining() const { return data_.subspan(pos_); }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  /// Rebind the cursor to an absolute position (bounds-checked). Lets a
  /// reader be reconstructed over a moved payload in O(1) instead of
  /// replaying the consumed prefix.
  void seek(std::size_t pos) {
    MADMPI_CHECK_MSG(pos <= data_.size(), "byte reader seek out of range");
    pos_ = pos;
  }
  /// Advance past `size` bytes without copying them out.
  void skip(std::size_t size) { seek(pos_ + size); }

 private:
  byte_span data_;
  std::size_t pos_ = 0;
};

}  // namespace madmpi
