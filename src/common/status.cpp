#include "common/status.hpp"

namespace madmpi {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kNotConnected: return "not_connected";
    case ErrorCode::kChannelClosed: return "channel_closed";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kResourceLimit: return "resource_limit";
    case ErrorCode::kTimedOut: return "timed_out";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kProcFailed: return "proc_failed";
    case ErrorCode::kRevoked: return "revoked";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void fatal(const std::string& message) {
  std::fprintf(stderr, "[madmpi fatal] %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace madmpi
