// Real-datapath accounting: how many bytes the *implementation* actually
// moves per message, independent of the virtual-clock cost model.
//
// The simulator charges virtual time for the copies the modeled hardware
// would perform; these counters instead observe the copies our host-side
// code performs while emulating that hardware. The zero-copy work (slab
// pool, scatter-gather frames) changes only these numbers — the virtual
// charges are pinned by test_calibration and must not move.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace madmpi {

struct DatapathSnapshot {
  std::uint64_t bytes_copied = 0;  // payload bytes memcpy'd between buffers
  std::uint64_t copy_ops = 0;      // number of bulk copies
  std::uint64_t staging_allocs = 0;  // fresh datapath buffer allocations
  std::uint64_t slab_allocs = 0;   // slabs obtained with a fresh allocation
  std::uint64_t slab_reuses = 0;   // slabs served from a pool free list
  std::uint64_t slab_fallbacks = 0;  // oversize / disabled-pool heap grabs
  std::uint64_t modeled_copy_bytes = 0;  // copies the *cost model* charged
  std::uint64_t poll_wakeups = 0;  // poller wakeups charged (teardown excluded)

  // Matching engine (RankContext): scan work and lock traffic. probe
  // steps / attempts = average scan length per matching operation;
  // bucket vs rank lock counts show how often the fast path held.
  std::uint64_t match_attempts = 0;     // post/delivery matching operations
  std::uint64_t match_probe_steps = 0;  // match-predicate evaluations
  std::uint64_t match_bucket_locks = 0;
  std::uint64_t match_rank_locks = 0;
  std::uint64_t match_posted_depth_hw = 0;      // queue-depth high-water
  std::uint64_t match_unexpected_depth_hw = 0;  // (monotonic since reset)
};

/// Process-wide counters. Cheap enough (relaxed atomics) to leave on in
/// release builds; benches snapshot/reset around their measured windows.
class DatapathStats {
 public:
  static DatapathStats& global() {
    static DatapathStats stats;
    return stats;
  }

  void count_copy(std::size_t bytes) {
    if (bytes == 0) return;
    bytes_copied_.fetch_add(bytes, std::memory_order_relaxed);
    copy_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_staging_alloc() {
    staging_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_slab_alloc() {
    slab_allocs_.fetch_add(1, std::memory_order_relaxed);
    staging_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_slab_reuse() {
    slab_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_slab_fallback() {
    slab_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    staging_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_modeled_copy(std::size_t bytes) {
    modeled_copy_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void count_poll_wakeup() {
    poll_wakeups_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_match_attempt(std::uint64_t steps) {
    match_attempts_.fetch_add(1, std::memory_order_relaxed);
    match_probe_steps_.fetch_add(steps, std::memory_order_relaxed);
  }
  void count_match_bucket_lock() {
    match_bucket_locks_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_match_rank_lock() {
    match_rank_locks_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_match_posted_depth(std::uint64_t depth) {
    raise_max(match_posted_depth_hw_, depth);
  }
  void note_match_unexpected_depth(std::uint64_t depth) {
    raise_max(match_unexpected_depth_hw_, depth);
  }

  DatapathSnapshot snapshot() const {
    DatapathSnapshot s;
    s.bytes_copied = bytes_copied_.load(std::memory_order_relaxed);
    s.copy_ops = copy_ops_.load(std::memory_order_relaxed);
    s.staging_allocs = staging_allocs_.load(std::memory_order_relaxed);
    s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
    s.slab_reuses = slab_reuses_.load(std::memory_order_relaxed);
    s.slab_fallbacks = slab_fallbacks_.load(std::memory_order_relaxed);
    s.modeled_copy_bytes = modeled_copy_bytes_.load(std::memory_order_relaxed);
    s.poll_wakeups = poll_wakeups_.load(std::memory_order_relaxed);
    s.match_attempts = match_attempts_.load(std::memory_order_relaxed);
    s.match_probe_steps = match_probe_steps_.load(std::memory_order_relaxed);
    s.match_bucket_locks =
        match_bucket_locks_.load(std::memory_order_relaxed);
    s.match_rank_locks = match_rank_locks_.load(std::memory_order_relaxed);
    s.match_posted_depth_hw =
        match_posted_depth_hw_.load(std::memory_order_relaxed);
    s.match_unexpected_depth_hw =
        match_unexpected_depth_hw_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    bytes_copied_.store(0, std::memory_order_relaxed);
    copy_ops_.store(0, std::memory_order_relaxed);
    staging_allocs_.store(0, std::memory_order_relaxed);
    slab_allocs_.store(0, std::memory_order_relaxed);
    slab_reuses_.store(0, std::memory_order_relaxed);
    slab_fallbacks_.store(0, std::memory_order_relaxed);
    modeled_copy_bytes_.store(0, std::memory_order_relaxed);
    poll_wakeups_.store(0, std::memory_order_relaxed);
    match_attempts_.store(0, std::memory_order_relaxed);
    match_probe_steps_.store(0, std::memory_order_relaxed);
    match_bucket_locks_.store(0, std::memory_order_relaxed);
    match_rank_locks_.store(0, std::memory_order_relaxed);
    match_posted_depth_hw_.store(0, std::memory_order_relaxed);
    match_unexpected_depth_hw_.store(0, std::memory_order_relaxed);
  }

 private:
  static void raise_max(std::atomic<std::uint64_t>& slot,
                        std::uint64_t value) {
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    while (current < value &&
           !slot.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> bytes_copied_{0};
  std::atomic<std::uint64_t> copy_ops_{0};
  std::atomic<std::uint64_t> staging_allocs_{0};
  std::atomic<std::uint64_t> slab_allocs_{0};
  std::atomic<std::uint64_t> slab_reuses_{0};
  std::atomic<std::uint64_t> slab_fallbacks_{0};
  std::atomic<std::uint64_t> modeled_copy_bytes_{0};
  std::atomic<std::uint64_t> poll_wakeups_{0};
  std::atomic<std::uint64_t> match_attempts_{0};
  std::atomic<std::uint64_t> match_probe_steps_{0};
  std::atomic<std::uint64_t> match_bucket_locks_{0};
  std::atomic<std::uint64_t> match_rank_locks_{0};
  std::atomic<std::uint64_t> match_posted_depth_hw_{0};
  std::atomic<std::uint64_t> match_unexpected_depth_hw_{0};
};

/// Shorthand for the common case.
inline void count_real_copy(std::size_t bytes) {
  DatapathStats::global().count_copy(bytes);
}

/// Difference between two snapshots (b taken after a).
inline DatapathSnapshot operator-(const DatapathSnapshot& b,
                                  const DatapathSnapshot& a) {
  DatapathSnapshot d;
  d.bytes_copied = b.bytes_copied - a.bytes_copied;
  d.copy_ops = b.copy_ops - a.copy_ops;
  d.staging_allocs = b.staging_allocs - a.staging_allocs;
  d.slab_allocs = b.slab_allocs - a.slab_allocs;
  d.slab_reuses = b.slab_reuses - a.slab_reuses;
  d.slab_fallbacks = b.slab_fallbacks - a.slab_fallbacks;
  d.modeled_copy_bytes = b.modeled_copy_bytes - a.modeled_copy_bytes;
  d.poll_wakeups = b.poll_wakeups - a.poll_wakeups;
  d.match_attempts = b.match_attempts - a.match_attempts;
  d.match_probe_steps = b.match_probe_steps - a.match_probe_steps;
  d.match_bucket_locks = b.match_bucket_locks - a.match_bucket_locks;
  d.match_rank_locks = b.match_rank_locks - a.match_rank_locks;
  d.match_posted_depth_hw = b.match_posted_depth_hw;
  d.match_unexpected_depth_hw = b.match_unexpected_depth_hw;
  return d;
}

}  // namespace madmpi
