// Minimal thread-safe leveled logger. Off by default above kWarn so tests
// and benches stay quiet; MADMPI_LOG env var or set_level() raises verbosity.
#pragma once

#include <cstdarg>
#include <string>

namespace madmpi {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

namespace log {

/// Current threshold; messages below it are dropped.
LogLevel level();
void set_level(LogLevel level);

/// printf-style logging. `subsystem` tags the emitting module ("mad",
/// "ch_mad", "sim", ...).
void write(LogLevel level, const char* subsystem, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace log

#define MADMPI_LOG_TRACE(subsys, ...) \
  ::madmpi::log::write(::madmpi::LogLevel::kTrace, subsys, __VA_ARGS__)
#define MADMPI_LOG_DEBUG(subsys, ...) \
  ::madmpi::log::write(::madmpi::LogLevel::kDebug, subsys, __VA_ARGS__)
#define MADMPI_LOG_INFO(subsys, ...) \
  ::madmpi::log::write(::madmpi::LogLevel::kInfo, subsys, __VA_ARGS__)
#define MADMPI_LOG_WARN(subsys, ...) \
  ::madmpi::log::write(::madmpi::LogLevel::kWarn, subsys, __VA_ARGS__)
#define MADMPI_LOG_ERROR(subsys, ...) \
  ::madmpi::log::write(::madmpi::LogLevel::kError, subsys, __VA_ARGS__)

}  // namespace madmpi
