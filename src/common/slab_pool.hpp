// Pooled slab allocator and refcounted chunk views: the zero-copy
// datapath's memory subsystem.
//
// A Slab is one heap allocation drawn from a size-classed pool; a ChunkRef
// is a refcounted [offset, length) view of a slab that layers hand to each
// other without copying. A sim::Frame carries a ChunkList (scatter-gather
// list of ChunkRefs, iovec-style), so an eager message's EXPRESS header
// and CHEAPER body travel as two references to the same pooled slab
// instead of three successive vector copies. Refcounts are what make the
// fault/retransmit path safe: a frame may be re-sent after its sender has
// moved on, and every copy of the frame just bumps the slab refcount.
//
// Env knobs (read once, at pool construction):
//   MADMPI_SLAB_DISABLE=1      every acquire is a one-off heap allocation
//                              (fallback path; pooling off, for debugging)
//   MADMPI_SLAB_MAX_CACHED=N   free slabs cached per size class (default 16)
//   MADMPI_SLAB_MAX_CLASS=N    largest pooled slab in bytes (default 256 KB;
//                              bigger requests fall back to one-off heap
//                              allocations that are never cached)
//   MADMPI_SLAB_REFILL=N       slabs carved per cache miss (default 8): one
//                              is handed out, the spares are cached so later
//                              concurrency spikes stay off the heap
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace madmpi {

class SlabPool;

namespace detail {
struct SlabPoolCore;
}

/// One pooled (or one-off fallback) buffer. Refcounted; reaching zero
/// returns the slab to its pool's free list (or frees it, for fallback
/// slabs and full caches). Slabs outlive their SlabPool object: each live
/// slab keeps the pool core alive via a shared_ptr.
class Slab {
 public:
  std::byte* data() { return mem_.get(); }
  const std::byte* data() const { return mem_.get(); }
  std::size_t capacity() const { return capacity_; }

  void add_ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Drop one reference; recycles or frees the slab at zero. The caller's
  /// pointer is dead after this call.
  void release();

  std::uint32_t refs() const { return refs_.load(std::memory_order_relaxed); }
  /// True for one-off heap slabs (pool disabled or oversize request).
  bool fallback() const { return size_class_ < 0; }

 private:
  friend struct detail::SlabPoolCore;
  Slab(std::size_t capacity, int size_class);

  std::unique_ptr<std::byte[]> mem_;
  std::size_t capacity_;
  int size_class_;  // -1 = untracked fallback, never cached
  std::atomic<std::uint32_t> refs_;
  std::shared_ptr<detail::SlabPoolCore> core_;  // null while cached/fallback
};

/// A refcounted view of `length` bytes at `offset` inside a slab. Copying a
/// ChunkRef bumps the slab refcount; destroying it releases. The default
/// constructed ref is empty (no slab, zero length).
class ChunkRef {
 public:
  ChunkRef() = default;
  /// View over an existing reference: bumps the refcount.
  ChunkRef(Slab* slab, std::size_t offset, std::size_t length)
      : slab_(slab), offset_(offset), length_(length) {
    if (slab_ != nullptr) slab_->add_ref();
  }
  /// Takes ownership of one reference the caller already holds (no bump).
  static ChunkRef adopt(Slab* slab, std::size_t offset, std::size_t length) {
    ChunkRef ref;
    ref.slab_ = slab;
    ref.offset_ = offset;
    ref.length_ = length;
    return ref;
  }

  ChunkRef(const ChunkRef& other)
      : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
    if (slab_ != nullptr) slab_->add_ref();
  }
  ChunkRef(ChunkRef&& other) noexcept
      : slab_(other.slab_), offset_(other.offset_), length_(other.length_) {
    other.slab_ = nullptr;
    other.length_ = 0;
  }
  ChunkRef& operator=(const ChunkRef& other) {
    if (this != &other) {
      if (other.slab_ != nullptr) other.slab_->add_ref();
      reset();
      slab_ = other.slab_;
      offset_ = other.offset_;
      length_ = other.length_;
    }
    return *this;
  }
  ChunkRef& operator=(ChunkRef&& other) noexcept {
    if (this != &other) {
      reset();
      slab_ = other.slab_;
      offset_ = other.offset_;
      length_ = other.length_;
      other.slab_ = nullptr;
      other.length_ = 0;
    }
    return *this;
  }
  ~ChunkRef() { reset(); }

  void reset() {
    if (slab_ != nullptr) slab_->release();
    slab_ = nullptr;
    offset_ = 0;
    length_ = 0;
  }

  explicit operator bool() const { return slab_ != nullptr; }
  bool empty() const { return length_ == 0; }
  std::size_t size() const { return length_; }
  const std::byte* data() const {
    return slab_ == nullptr ? nullptr : slab_->data() + offset_;
  }
  /// Mutable access: only sound while the caller knows no other reference
  /// reads these bytes concurrently (e.g. the delivered copy of a frame).
  std::byte* mutable_data() {
    return slab_ == nullptr ? nullptr : slab_->data() + offset_;
  }
  byte_span span() const { return {data(), length_}; }

  /// A view of a sub-range (bumps the refcount).
  ChunkRef subchunk(std::size_t offset, std::size_t length) const {
    MADMPI_CHECK_MSG(offset + length <= length_, "subchunk out of range");
    return ChunkRef(slab_, offset_ + offset, length);
  }

  Slab* slab() const { return slab_; }
  std::size_t offset() const { return offset_; }

 private:
  Slab* slab_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t length_ = 0;
};

/// Pool counters (per pool; DatapathStats aggregates globally).
struct SlabPoolStats {
  std::uint64_t fresh_allocs = 0;  // new heap slabs carved
  std::uint64_t reuses = 0;        // acquisitions served from the cache
  std::uint64_t fallbacks = 0;     // one-off allocations (disabled/oversize)
  std::size_t outstanding_bytes = 0;   // pooled bytes currently referenced
  std::size_t high_water_bytes = 0;    // max of outstanding_bytes ever seen
  std::size_t cached_slabs = 0;        // free slabs parked across classes
};

/// Size-classed slab pool. Classes are 64 << k bytes; requests above the
/// largest class (or with pooling disabled) fall back to one-off heap
/// slabs. Thread-safe; chunks may outlive the pool object.
class SlabPool {
 public:
  struct Options {
    bool disabled = false;
    std::size_t max_cached_per_class = 16;
    std::size_t max_slab_bytes = 256 * 1024;
    /// Slabs carved per cache miss (1 handed out, the rest cached): keeps
    /// concurrency spikes off the heap after the class's first touch.
    std::size_t refill_batch = 8;
    static Options from_env();
  };

  explicit SlabPool(Options options = Options::from_env());
  ~SlabPool();
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// A slab of at least `min_bytes` capacity with one reference held by the
  /// caller (pair with Slab::release() or wrap via ChunkRef::adopt).
  Slab* acquire(std::size_t min_bytes);

  /// An exact-length chunk (uninitialized bytes).
  ChunkRef allocate(std::size_t bytes);

  /// Allocate + copy: stages caller bytes into a pooled chunk. This is a
  /// real staging copy, so it is charged to the bytes-copied metric.
  ChunkRef stage(const void* data, std::size_t bytes);
  ChunkRef stage(byte_span data) { return stage(data.data(), data.size()); }

  SlabPoolStats stats() const;
  const Options& options() const;
  /// Drop every cached free slab (outstanding chunks are unaffected).
  void trim();

  /// Process-wide pool used by compat paths and layers without a channel.
  static SlabPool& global();

 private:
  std::shared_ptr<detail::SlabPoolCore> core_;
};

/// Scatter-gather payload: an ordered list of chunk references (iovec
/// style). Small inline capacity covers the common header+body pair
/// without a heap node. Also provides the small vector-compat surface
/// (resize/assign/data) legacy frame producers use — those route through
/// SlabPool::global() as a single chunk.
class ChunkList {
 public:
  ChunkList() = default;
  /// Copying bumps every segment's slab refcount (frame retransmission).
  ChunkList(const ChunkList&) = default;
  ChunkList& operator=(const ChunkList&) = default;
  ChunkList(ChunkList&& other) noexcept
      : count_(other.count_),
        spill_(std::move(other.spill_)),
        total_(other.total_) {
    for (std::size_t i = 0; i < count_; ++i) {
      inline_[i] = std::move(other.inline_[i]);
    }
    other.count_ = 0;
    other.total_ = 0;
  }
  ChunkList& operator=(ChunkList&& other) noexcept {
    if (this != &other) {
      clear();
      count_ = other.count_;
      spill_ = std::move(other.spill_);
      total_ = other.total_;
      for (std::size_t i = 0; i < count_; ++i) {
        inline_[i] = std::move(other.inline_[i]);
      }
      other.count_ = 0;
      other.total_ = 0;
    }
    return *this;
  }

  void push_back(ChunkRef chunk) {
    if (chunk.empty()) return;
    total_ += chunk.size();
    if (count_ < kInline) {
      inline_[count_++] = std::move(chunk);
    } else {
      spill_.push_back(std::move(chunk));
    }
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) inline_[i].reset();
    count_ = 0;
    spill_.clear();
    total_ = 0;
  }

  std::size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  std::size_t segment_count() const { return count_ + spill_.size(); }
  const ChunkRef& segment(std::size_t i) const {
    return i < count_ ? inline_[i] : spill_[i - count_];
  }

  /// True when the segments form one unbroken run of slab memory (adjacent
  /// views of the same slab coalesce — the header+body pair case).
  bool is_contiguous() const;
  /// The joined span; aborts when not contiguous.
  byte_span contiguous() const;

  const std::byte* data() const { return contiguous().data(); }
  std::byte* data();

  /// A refcounted view of [offset, offset+length): must fall inside one
  /// contiguous run.
  ChunkRef slice(std::size_t offset, std::size_t length) const;

  // ---- vector-compat surface (single pooled chunk) ----
  void resize(std::size_t bytes);                    // zero-filled
  void assign(const void* data, std::size_t bytes);  // copy in
  template <typename It>
  void assign(It first, It last) {
    const std::size_t n = static_cast<std::size_t>(last - first);
    assign(n == 0 ? nullptr : &*first, n);
  }

 private:
  static constexpr std::size_t kInline = 2;
  ChunkRef inline_[kInline];
  std::size_t count_ = 0;
  std::vector<ChunkRef> spill_;
  std::size_t total_ = 0;
};

/// Builds a message's control region directly in one pooled slab (the
/// ByteWriter replacement for the hot path). Append-only; chunk views must
/// be taken only after the last append (a regrow-by-copy would otherwise
/// leave earlier views on the retired slab).
class ChunkWriter {
 public:
  static constexpr std::size_t kDefaultReserve = 4096;

  explicit ChunkWriter(SlabPool& pool, std::size_t reserve = kDefaultReserve)
      : pool_(&pool), reserve_(reserve == 0 ? kDefaultReserve : reserve) {}
  ~ChunkWriter() {
    if (slab_ != nullptr) slab_->release();
  }
  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;
  ChunkWriter(ChunkWriter&& other) noexcept
      : pool_(other.pool_),
        reserve_(other.reserve_),
        slab_(other.slab_),
        pos_(other.pos_) {
    other.slab_ = nullptr;
    other.pos_ = 0;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    append(&value, sizeof value);
  }

  void append(const void* data, std::size_t size);
  void append(byte_span data) { append(data.data(), data.size()); }

  std::size_t position() const { return pos_; }
  byte_span span() const {
    return {slab_ == nullptr ? nullptr : slab_->data(), pos_};
  }

  /// Refcounted view of an already-written range.
  ChunkRef chunk(std::size_t offset, std::size_t length) const {
    MADMPI_CHECK_MSG(offset + length <= pos_, "chunk range not yet written");
    return ChunkRef(slab_, offset, length);
  }
  ChunkRef take_all() const { return chunk(0, pos_); }

 private:
  void ensure(std::size_t more);

  SlabPool* pool_;
  std::size_t reserve_;
  Slab* slab_ = nullptr;
  std::size_t pos_ = 0;
};

}  // namespace madmpi
