#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace madmpi::log {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("MADMPI_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel level() { return static_cast<LogLevel>(g_level.load()); }

void set_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

void write(LogLevel level, const char* subsystem, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", level_name(level), subsystem, body);
}

}  // namespace madmpi::log
