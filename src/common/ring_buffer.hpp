// Bounded MPSC ring of messages used by the smp_plug intra-node device.
// Mirrors the shared-memory FIFO a real SMP plug device would map: fixed
// capacity, blocking producers when full, blocking consumer when empty.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace madmpi {

template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity) : capacity_(capacity) {
    MADMPI_CHECK(capacity > 0);
  }

  /// Blocks until space is available. Returns false if the ring was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Wakes all blocked producers/consumers; subsequent pushes fail, pops
  /// drain the remaining items then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace madmpi
