#include "common/slab_pool.hpp"

#include <cstdlib>
#include <cstring>

#include "common/datapath_stats.hpp"

namespace madmpi {

namespace detail {

namespace {

std::size_t class_capacity(int size_class) {
  return std::size_t{64} << size_class;
}

int class_for(std::size_t bytes, std::size_t max_slab_bytes) {
  if (bytes > max_slab_bytes) return -1;
  int k = 0;
  while (class_capacity(k) < bytes) ++k;
  return k;
}

}  // namespace

struct SlabPoolCore {
  explicit SlabPoolCore(SlabPool::Options opts) : options(opts) {
    int classes = 0;
    while (class_capacity(classes) < options.max_slab_bytes) ++classes;
    free_lists.resize(static_cast<std::size_t>(classes) + 1);
  }

  ~SlabPoolCore() {
    for (auto& list : free_lists) {
      for (Slab* slab : list) delete slab;
    }
  }

  Slab* acquire(std::size_t min_bytes,
                const std::shared_ptr<SlabPoolCore>& self) {
    auto& dp = DatapathStats::global();
    const int cls =
        options.disabled ? -1 : class_for(min_bytes, options.max_slab_bytes);
    if (cls < 0) {
      // Exhausted the pooled classes (or pooling disabled): one-off heap
      // slab, freed on release, never cached.
      dp.count_slab_fallback();
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.fallbacks;
      }
      return new Slab(min_bytes == 0 ? 1 : min_bytes, -1);
    }
    const std::size_t capacity = class_capacity(cls);
    Slab* slab = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex);
      auto& list = free_lists[static_cast<std::size_t>(cls)];
      if (!list.empty()) {
        slab = list.back();
        list.pop_back();
        ++stats.reuses;
      } else {
        ++stats.fresh_allocs;
      }
      stats.outstanding_bytes += capacity;
      if (stats.outstanding_bytes > stats.high_water_bytes) {
        stats.high_water_bytes = stats.outstanding_bytes;
      }
    }
    if (slab == nullptr) {
      dp.count_slab_alloc();
      slab = new Slab(capacity, cls);
      // Batch refill: a cache miss means demand for this class just grew,
      // so carve a few spares into the free list now. A later concurrency
      // spike (one more slab of the class alive at once than ever before)
      // then hits the cache instead of the heap mid-run — first-touch cost
      // stays confined to warm-up.
      std::size_t extras =
          options.refill_batch > 1 ? options.refill_batch - 1 : 0;
      if (extras != 0) {
        std::lock_guard<std::mutex> lock(mutex);
        auto& list = free_lists[static_cast<std::size_t>(cls)];
        while (extras-- > 0 && list.size() < options.max_cached_per_class) {
          ++stats.fresh_allocs;
          dp.count_slab_alloc();
          list.push_back(new Slab(capacity, cls));
        }
      }
    } else {
      dp.count_slab_reuse();
      slab->refs_.store(1, std::memory_order_relaxed);
    }
    slab->core_ = self;  // keeps the pool core alive while referenced
    return slab;
  }

  /// Called by Slab::release at refcount zero; `self` is the core
  /// reference the slab held (moved out before the call so a cached slab
  /// does not keep the core alive in a cycle).
  void recycle(Slab* slab) {
    std::unique_lock<std::mutex> lock(mutex);
    stats.outstanding_bytes -= std::min(stats.outstanding_bytes,
                                        slab->capacity());
    auto& list = free_lists[static_cast<std::size_t>(slab->size_class_)];
    if (list.size() < options.max_cached_per_class) {
      list.push_back(slab);
      return;
    }
    lock.unlock();
    delete slab;
  }

  const SlabPool::Options options;
  std::mutex mutex;
  std::vector<std::vector<Slab*>> free_lists;
  SlabPoolStats stats;
};

}  // namespace detail

Slab::Slab(std::size_t capacity, int size_class)
    : mem_(new std::byte[capacity]),
      capacity_(capacity),
      size_class_(size_class),
      refs_(1) {}

void Slab::release() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Move the core reference to a local first: recycle() must not run under
  // a core the slab itself is keeping alive (destroying the last reference
  // while its mutex is held would be use-after-free).
  std::shared_ptr<detail::SlabPoolCore> core = std::move(core_);
  if (core == nullptr || fallback()) {
    delete this;
    return;
  }
  core->recycle(this);
}

SlabPool::Options SlabPool::Options::from_env() {
  Options options;
  if (const char* v = std::getenv("MADMPI_SLAB_DISABLE")) {
    options.disabled = v[0] != '\0' && v[0] != '0';
  }
  if (const char* v = std::getenv("MADMPI_SLAB_MAX_CACHED")) {
    options.max_cached_per_class =
        static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("MADMPI_SLAB_MAX_CLASS")) {
    const auto bytes = std::strtoull(v, nullptr, 10);
    if (bytes >= 64) options.max_slab_bytes = static_cast<std::size_t>(bytes);
  }
  if (const char* v = std::getenv("MADMPI_SLAB_REFILL")) {
    options.refill_batch =
        static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  return options;
}

SlabPool::SlabPool(Options options)
    : core_(std::make_shared<detail::SlabPoolCore>(options)) {}

SlabPool::~SlabPool() = default;  // outstanding chunks keep core_ alive

Slab* SlabPool::acquire(std::size_t min_bytes) {
  return core_->acquire(min_bytes, core_);
}

ChunkRef SlabPool::allocate(std::size_t bytes) {
  if (bytes == 0) return {};
  return ChunkRef::adopt(acquire(bytes), 0, bytes);
}

ChunkRef SlabPool::stage(const void* data, std::size_t bytes) {
  ChunkRef chunk = allocate(bytes);
  if (bytes != 0) {
    std::memcpy(chunk.mutable_data(), data, bytes);
    count_real_copy(bytes);
  }
  return chunk;
}

SlabPoolStats SlabPool::stats() const {
  std::lock_guard<std::mutex> lock(core_->mutex);
  SlabPoolStats out = core_->stats;
  out.cached_slabs = 0;
  for (const auto& list : core_->free_lists) out.cached_slabs += list.size();
  return out;
}

const SlabPool::Options& SlabPool::options() const { return core_->options; }

void SlabPool::trim() {
  std::vector<Slab*> victims;
  {
    std::lock_guard<std::mutex> lock(core_->mutex);
    for (auto& list : core_->free_lists) {
      victims.insert(victims.end(), list.begin(), list.end());
      list.clear();
    }
  }
  for (Slab* slab : victims) delete slab;
}

SlabPool& SlabPool::global() {
  static SlabPool* pool = new SlabPool();  // leaked: outlives all users
  return *pool;
}

// ------------------------------------------------------------- ChunkList

bool ChunkList::is_contiguous() const {
  const std::size_t segments = segment_count();
  for (std::size_t i = 1; i < segments; ++i) {
    const ChunkRef& prev = segment(i - 1);
    const ChunkRef& cur = segment(i);
    if (cur.slab() != prev.slab() ||
        cur.offset() != prev.offset() + prev.size()) {
      return false;
    }
  }
  return true;
}

byte_span ChunkList::contiguous() const {
  if (segment_count() == 0) return {};
  MADMPI_CHECK_MSG(is_contiguous(),
                   "scatter-gather payload read as a flat span");
  return {segment(0).data(), total_};
}

std::byte* ChunkList::data() {
  if (segment_count() == 0) return nullptr;
  MADMPI_CHECK_MSG(is_contiguous(),
                   "scatter-gather payload read as a flat span");
  return inline_[0].mutable_data();
}

ChunkRef ChunkList::slice(std::size_t offset, std::size_t length) const {
  MADMPI_CHECK_MSG(offset + length <= total_, "payload slice out of range");
  if (length == 0) return {};
  // Find the segment holding `offset`, then extend across the coalesced
  // run (adjacent views of the same slab are one region of memory).
  const std::size_t segments = segment_count();
  std::size_t base = 0;
  for (std::size_t i = 0; i < segments; ++i) {
    const ChunkRef& seg = segment(i);
    if (offset < base + seg.size()) {
      std::size_t run = seg.size() - (offset - base);
      for (std::size_t j = i + 1; j < segments && run < length; ++j) {
        const ChunkRef& next = segment(j);
        const ChunkRef& prev = segment(j - 1);
        if (next.slab() != prev.slab() ||
            next.offset() != prev.offset() + prev.size()) {
          break;
        }
        run += next.size();
      }
      MADMPI_CHECK_MSG(length <= run,
                       "payload slice crosses a scatter-gather break");
      return ChunkRef(seg.slab(), seg.offset() + (offset - base), length);
    }
    base += seg.size();
  }
  return {};
}

void ChunkList::resize(std::size_t bytes) {
  clear();
  if (bytes == 0) return;
  ChunkRef chunk = SlabPool::global().allocate(bytes);
  std::memset(chunk.mutable_data(), 0, bytes);
  push_back(std::move(chunk));
}

void ChunkList::assign(const void* data, std::size_t bytes) {
  clear();
  if (bytes == 0) return;
  push_back(SlabPool::global().stage(data, bytes));
}

// ------------------------------------------------------------ ChunkWriter

void ChunkWriter::ensure(std::size_t more) {
  if (slab_ != nullptr && pos_ + more <= slab_->capacity()) return;
  std::size_t want = pos_ + more;
  if (want < reserve_) want = reserve_;
  if (slab_ != nullptr && want < slab_->capacity() * 2) {
    want = slab_->capacity() * 2;
  }
  Slab* bigger = pool_->acquire(want);
  if (slab_ != nullptr) {
    // Regrow by copy. Rare by construction (the reserve covers control
    // frames); counted, since it is a real staging copy.
    if (pos_ != 0) {
      std::memcpy(bigger->data(), slab_->data(), pos_);
      count_real_copy(pos_);
    }
    slab_->release();
  }
  slab_ = bigger;
}

void ChunkWriter::append(const void* data, std::size_t size) {
  if (size == 0) return;
  ensure(size);
  std::memcpy(slab_->data() + pos_, data, size);
  pos_ += size;
}

}  // namespace madmpi
