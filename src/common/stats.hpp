// Running statistics and measurement series used by the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace madmpi {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed sample set supporting percentiles (used by latency reporting).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, q in [0, 1].
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// One (x, y...) row of a benchmark series, e.g. message size vs time.
struct SeriesPoint {
  double x = 0.0;
  std::vector<double> ys;
};

/// A named multi-column series, printable as the paper's figure data.
struct Series {
  std::string x_label;
  std::vector<std::string> y_labels;
  std::vector<SeriesPoint> points;

  void add(double x, std::vector<double> ys);
  /// Render as an aligned text table (gnuplot-friendly: "# " comment header).
  std::string to_table() const;
  /// Render as CSV with a header row.
  std::string to_csv() const;
};

/// The log-spaced message-size ladder used by mpptest-style figures:
/// 1, 2, 4, ... up to `max_size` inclusive.
std::vector<std::size_t> power_of_two_sizes(std::size_t max_size);

}  // namespace madmpi
