// Deterministic RNG (splitmix64 / xoshiro256**) for property tests and
// workload generators. Avoids std::mt19937's per-platform divergence.
#pragma once

#include <cstdint>
#include <cstddef>

namespace madmpi {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;  // modulo bias negligible for test workloads
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace madmpi
